package benchscen

// Scale scenarios: parameterized peer counts up to 1024, Zipf-skewed
// hot keys and hot queries, live join/leave churn, and WAN-vs-LAN
// latency topologies. cmd/benchjson -scale records them into
// BENCH_SCALE.json and the CI curve gate fails when routed-lookup cost
// stops growing logarithmically; the root scale_test.go asserts the
// same scenarios stay exact and within message budgets.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"unistore/internal/core"
	"unistore/internal/keys"
	"unistore/internal/pgrid"
	"unistore/internal/simnet"
	"unistore/internal/triple"
	"unistore/internal/workload"
)

// ScaleSizes are the peer counts the full scale sweep measures. CI's
// PR smoke run covers the first two; the nightly run covers all four.
var ScaleSizes = []int{128, 256, 512, 1024}

// ScalePoint is one measured routing-curve point: the mean message and
// hop cost of a cold routed lookup on an N-peer overlay.
type ScalePoint struct {
	Peers         int     `json:"peers"`
	MsgsPerLookup float64 `json:"msgs_per_lookup"`
	MeanHops      float64 `json:"mean_hops"`
}

// scaleProbes is how many routed lookups each curve point averages.
const scaleProbes = 64

// RoutingCurvePoint measures msgs-per-routed-lookup on an n-peer
// overlay with the routing cache disabled — every probe pays the full
// prefix-routed path, so the mean cost tracks the trie depth O(log n).
func RoutingCurvePoint(n int) ScalePoint {
	net := simnet.New(simnet.Config{
		Latency: simnet.ConstantLatency(time.Millisecond), Seed: int64(n),
	})
	cfg := pgrid.DefaultConfig()
	cfg.DisableRouteCache = true
	peers := pgrid.BuildBalanced(net, n, 1, cfg)
	ds := workload.Generate(workload.Options{Seed: 31, Persons: 40})
	v := uint64(0)
	for _, tr := range ds.Triples {
		v++
		peers[0].InsertTriple(tr, v)
	}
	net.Settle()
	var ks []keys.Key
	for _, tr := range ds.Triples {
		if tr.Attr == "name" {
			ks = append(ks, triple.IndexKey(tr, triple.ByAV))
		}
	}
	before := net.Stats().MessagesSent
	hops := 0
	for i := 0; i < scaleProbes; i++ {
		origin := peers[(i*257+1)%n]
		res := origin.LookupSync(triple.ByAV, ks[i%len(ks)])
		hops += res.Hops
	}
	net.Settle()
	msgs := net.Stats().MessagesSent - before
	return ScalePoint{
		Peers:         n,
		MsgsPerLookup: float64(msgs) / scaleProbes,
		MeanHops:      float64(hops) / scaleProbes,
	}
}

// RoutingCurve measures a curve point per size.
func RoutingCurve(sizes []int) []ScalePoint {
	out := make([]ScalePoint, 0, len(sizes))
	for _, n := range sizes {
		out = append(out, RoutingCurvePoint(n))
	}
	return out
}

// LogFit least-squares fits msgs = a + b·log2(peers) to the curve —
// the growth exponent b is the headline scalability number (O(log N)
// routing means b stays a small constant while peers double).
func LogFit(pts []ScalePoint) (a, b float64) {
	n := float64(len(pts))
	if n < 2 {
		if n == 1 {
			return pts[0].MsgsPerLookup, 0
		}
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x := math.Log2(float64(p.Peers))
		y := p.MsgsPerLookup
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

// CurveOK is the CI gate: the largest measured size must cost at most
// twice the log-linear extrapolation from the two smallest sizes. A
// routing regression to O(N) behaviour (linear scans, cache-less
// flooding) overshoots immediately; log growth passes with slack.
func CurveOK(pts []ScalePoint) bool {
	if len(pts) < 3 {
		return true
	}
	x0 := math.Log2(float64(pts[0].Peers))
	x1 := math.Log2(float64(pts[1].Peers))
	if x1 == x0 {
		return true
	}
	slope := (pts[1].MsgsPerLookup - pts[0].MsgsPerLookup) / (x1 - x0)
	last := pts[len(pts)-1]
	extrap := pts[0].MsgsPerLookup + slope*(math.Log2(float64(last.Peers))-x0)
	if extrap <= 0 {
		extrap = pts[1].MsgsPerLookup
	}
	return last.MsgsPerLookup <= 2*extrap
}

// HotShardResult summarizes per-peer serve load under hot-query skew.
type HotShardResult struct {
	Peers        int     `json:"peers"`
	ReadReplicas int     `json:"read_replicas"`
	MedianLoad   int     `json:"median_load"`
	P99Load      int     `json:"p99_load"`
	MaxLoad      int     `json:"max_load"`
	P99OverMed   float64 `json:"p99_over_median"`
}

// hotShardProbes is the lookup count of the hot-shard scenario.
const hotShardProbes = 400

// HotShard runs a Zipf-hot query workload against an n-node overlay
// (n/2 partitions × 2 replicas) and reports the per-peer serve-load
// distribution. readReplicas=1 pins every probe of the hot value to
// one owner (the hot shard); 0 lets the replica-balanced read path
// spread it over the whole group.
func HotShard(n, readReplicas int, zipfS float64) HotShardResult {
	parts := n / 2
	net := simnet.New(simnet.Config{
		Latency: simnet.ConstantLatency(time.Millisecond), Seed: 41,
	})
	cfg := pgrid.DefaultConfig()
	cfg.ReadReplicas = readReplicas
	peers := pgrid.BuildBalanced(net, parts, 2, cfg)
	ts := workload.SkewedValues(42, 1500, zipfS)
	v := uint64(0)
	for i, tr := range ts {
		v++
		peers[(i*13)%len(peers)].InsertTriple(tr, v)
	}
	net.Settle()
	// Query popularity is itself Zipf over the stored values: the pool's
	// head ranks absorb most lookups, concentrating load on their owners.
	pool := make([]string, 0, 256)
	valKey := make(map[string]keys.Key, 256)
	for _, tr := range ts[:256] {
		pool = append(pool, tr.Val.Str)
		valKey[tr.Val.Str] = triple.IndexKey(tr, triple.ByVal)
	}
	hot := workload.NewHotQueries(43, pool, zipfS)
	origin := peers[0]
	// Warm the origin's routing cache so the measured probes go direct —
	// the regime where replica spreading matters.
	for _, val := range pool[:32] {
		origin.LookupSync(triple.ByVal, valKey[val])
	}
	net.Settle()
	before := make([]int, len(peers))
	for i, p := range peers {
		before[i] = p.Stats().Delivered
	}
	for i := 0; i < hotShardProbes; i++ {
		origin.LookupSync(triple.ByVal, valKey[hot.Next()])
	}
	net.Settle()
	loads := make([]int, len(peers))
	for i, p := range peers {
		loads[i] = p.Stats().Delivered - before[i]
	}
	sort.Ints(loads)
	med := loads[len(loads)/2]
	p99 := loads[(len(loads)*99)/100]
	maxL := loads[len(loads)-1]
	ratio := 0.0
	if med > 0 {
		ratio = float64(p99) / float64(med)
	} else {
		ratio = float64(p99)
	}
	return HotShardResult{
		Peers: n, ReadReplicas: readReplicas,
		MedianLoad: med, P99Load: p99, MaxLoad: maxL, P99OverMed: ratio,
	}
}

// LatencyScenarioResult is one latency-topology measurement.
type LatencyScenarioResult struct {
	Profile string  `json:"profile"`
	Peers   int     `json:"peers"`
	SimMS   float64 `json:"sim_ms"`
	Msgs    int     `json:"msgs"`
}

// LatencyScenario runs the ranked top-k on an n-peer cluster under the
// given latency profile — uniform LAN vs the two-cluster WAN topology
// exercises simnet's per-pair delay models at scale.
func LatencyScenario(profile core.LatencyProfile, n int) LatencyScenarioResult {
	c := core.NewCluster(core.Config{
		Peers: n, Seed: 51, Latency: profile,
		RangeShards: 8, ProbeParallelism: 2, PageSize: ScanPageSize,
	})
	ds := workload.Generate(workload.Options{Seed: 52, Persons: 100})
	c.BulkInsert(ds.Triples...)
	before := c.Net().Stats().MessagesSent
	res, err := c.QueryFrom(0, TopKQuery)
	if err != nil {
		panic(fmt.Sprintf("benchscen: latency scenario: %v", err))
	}
	c.Net().Settle()
	return LatencyScenarioResult{
		Profile: string(profile), Peers: n,
		SimMS: float64(res.Elapsed.Microseconds()) / 1000,
		Msgs:  c.Net().Stats().MessagesSent - before,
	}
}

// ChurnScaleResult is the live join/leave churn scenario outcome: a
// paged scan runs to completion while a replica group splits and
// another merges mid-flight, and the row set must equal the loaded
// dataset exactly.
type ChurnScaleResult struct {
	Peers         int  `json:"peers"`
	Rows          int  `json:"rows"`
	Expected      int  `json:"expected"`
	Exact         bool `json:"exact"`
	Invalidations int  `json:"route_cache_invalidations"`
}

// ChurnScale builds an n-node cluster (n/2 partitions × 2 replicas),
// opens a paged scan, performs a live split after the first rows and a
// live merge further in, and checks the completed scan against the
// dataset's ground truth. Routing caches must self-repair (observed as
// invalidation counts) without costing correctness.
func ChurnScale(n int) ChurnScaleResult {
	c := core.NewCluster(core.Config{
		Peers: n / 2, Replicas: 2, Seed: 61,
		RangeShards: 4, PageSize: ScanPageSize, ProbeParallelism: 2,
	})
	ds := workload.Generate(workload.Options{Seed: 62, Persons: 120})
	c.BulkInsert(ds.Triples...)
	// Warm routing caches so the churn has learned state to invalidate.
	if _, err := c.QueryFrom(0, TopKQuery); err != nil {
		panic(fmt.Sprintf("benchscen: churn scale warmup: %v", err))
	}
	c.Net().Settle()
	expected := map[string]int{}
	for _, tr := range ds.Triples {
		if tr.Attr == "name" {
			expected[tr.Val.Str]++
		}
	}
	stream, err := c.QueryStreamFrom(context.Background(), 0, ScanQuery)
	if err != nil {
		panic(fmt.Sprintf("benchscen: churn scale: %v", err))
	}
	want := 0
	for _, n := range expected {
		want += n
	}
	got := map[string]int{}
	rows := 0
	pull := func(k int) bool {
		for i := 0; i < k; i++ {
			b, ok := stream.Next()
			if !ok {
				return false
			}
			got[b["n"].Str]++
			rows++
		}
		return true
	}
	if pull(5) {
		// A new peer joins peer 1's group and the enlarged group splits
		// live — mid-scan, with pages outstanding.
		c.JoinPeer(1)
		if err := c.SplitGroup(1); err != nil {
			panic(fmt.Sprintf("benchscen: churn scale split: %v", err))
		}
		if pull(5) {
			// And an unrelated group at the far end of the key space
			// merges into its sibling.
			if err := c.MergeGroup(c.Size() - 2); err != nil {
				panic(fmt.Sprintf("benchscen: churn scale merge: %v", err))
			}
		}
	}
	for pull(64) {
	}
	stream.Close()
	inval := 0
	for _, p := range c.Peers() {
		inval += p.Stats().RouteCacheInvalidations
	}
	exact := len(got) == len(expected)
	if exact {
		for k, n := range expected {
			if got[k] != n {
				exact = false
				break
			}
		}
	}
	return ChurnScaleResult{
		Peers: n, Rows: rows, Expected: want,
		Exact: exact, Invalidations: inval,
	}
}
