// Package benchscen defines the message-layer benchmark scenarios in
// ONE place: cmd/benchjson (the BENCH_PR5.json trend record), the
// bench_test.go benchmarks, and the msgbudget_test.go CI regression
// guard all build their clusters and plans here, so the budgets
// calibrated against the recorded numbers measure the same workload by
// construction — a seed or dataset tweak cannot silently drift one
// copy away from the others.
package benchscen

import (
	"fmt"

	"unistore/internal/algebra"
	"unistore/internal/core"
	"unistore/internal/keys"
	"unistore/internal/optimizer"
	"unistore/internal/physical"
	"unistore/internal/store"
	"unistore/internal/triple"
	"unistore/internal/vql"
	"unistore/internal/workload"
)

// Peers is the simnet size every scenario runs on.
const Peers = 64

// The scenario queries.
const (
	TopKQuery      = `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`
	IndexJoinQuery = `SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)}`
	ScanQuery      = `SELECT ?n WHERE {(?p,'name',?n)}`
	// ScanPageSize is the page bound of the paged full-scan scenario.
	ScanPageSize = 8
)

// TopK builds the ranked top-5 scenario: deterministic 64-peer
// cluster, sharded scans, bounded window, 300 persons loaded.
func TopK() *core.Cluster {
	c := core.NewCluster(core.Config{
		Peers: Peers, Seed: 12, RangeShards: 8, ProbeParallelism: 2,
	})
	ds := workload.Generate(workload.Options{Seed: 13, Persons: 300})
	c.BulkInsert(ds.Triples...)
	return c
}

// IndexJoin builds the DHT index-join scenario: a trie adapted to the
// dataset (the load-balanced production configuration — the
// order-preserving hash would otherwise cluster every probe key into
// one or two partitions and overstate the cache win), 60 persons
// loaded. disableCache=true is the pre-fast-path baseline.
func IndexJoin(disableCache bool) *core.Cluster {
	ds := workload.Generate(workload.Options{Seed: 9, Persons: 60})
	var samples []keys.Key
	for _, tr := range ds.Triples {
		for _, kind := range triple.AllIndexKinds {
			samples = append(samples, triple.IndexKey(tr, kind))
		}
	}
	c := core.NewCluster(core.Config{
		Peers: Peers, Seed: 8, DisableRouteCache: disableCache,
		AdaptiveSamples: samples,
	})
	c.BulkInsert(ds.Triples...)
	return c
}

// IndexJoinPlan compiles the two-pattern join with the second step
// pinned to the OID index: each person bound by the name scan is
// resolved with one exact OID probe — the DHT index join, whose keys
// scatter over the whole partition space.
func IndexJoinPlan() (*physical.Plan, error) {
	q, err := vql.ParseQuery(IndexJoinQuery)
	if err != nil {
		return nil, fmt.Errorf("benchscen: %w", err)
	}
	plan, err := physical.CompileQuery(q)
	if err != nil {
		return nil, fmt.Errorf("benchscen: %w", err)
	}
	plan.Steps[1].Strat = physical.StratOIDLookup
	return plan, nil
}

// ChurnPeers/ChurnReplicas shape the churn scenario's overlay: 32
// partitions × 2 replicas = the same 64-node simnet the other
// scenarios use, but with every partition held twice.
const (
	ChurnPeers    = 32
	ChurnReplicas = 2
	// ChurnDeadFraction of the nodes are killed before the measured
	// query (one replica per partition at most, so data stays
	// reachable — the paper's churn regime, not a data-loss one).
	ChurnDeadFraction = 0.10
)

// ChurnTopK builds the churn scenario cluster: a replicated 64-node
// simnet (deterministic), 300 persons loaded, routing caches warmed by
// one throwaway ranked query from peer 0. singleOwner pins reads to
// the primary owner with hedging and scan retries disabled — the
// fail-slow baseline whose queries wait out the operation deadline
// when churn swallows a branch; the replica-balanced configuration
// fails over instead.
func ChurnTopK(singleOwner bool) *core.Cluster {
	cfg := core.Config{
		Peers: ChurnPeers, Replicas: ChurnReplicas, Seed: 21,
		RangeShards: 8, ProbeParallelism: 2, PageSize: ScanPageSize,
	}
	if singleOwner {
		cfg.ReadReplicas = 1
		cfg.HedgeAfter = -1
	}
	c := core.NewCluster(cfg)
	ds := workload.Generate(workload.Options{Seed: 22, Persons: 300})
	c.BulkInsert(ds.Triples...)
	// Warm the caches (and the replica sets they learn) from the peer
	// the measured query will run on.
	if _, err := c.QueryFrom(0, TopKQuery); err != nil {
		panic(fmt.Sprintf("benchscen: churn warmup: %v", err))
	}
	c.Net().Settle()
	return c
}

// ChurnResult is one measured churn run.
type ChurnResult struct {
	Rows     int
	Dead     int
	Msgs     int
	Bytes    int
	SimMS    float64
	TtfrMS   float64
	Bindings []algebra.Binding
}

// ChurnTopKRun executes the measured ranked top-k on a ChurnTopK
// cluster with 10% of the nodes killed MID-FLIGHT (see ChurnRun).
func ChurnTopKRun(c *core.Cluster) (ChurnResult, error) {
	plan, err := physical.CompileQuery(mustParse(TopKQuery))
	if err != nil {
		return ChurnResult{}, err
	}
	return ChurnRun(c, plan)
}

// ChurnRun executes one compiled plan with 10% of the nodes killed
// MID-FLIGHT: the plan is started, and the nodes its first-hop branch
// envelopes are in the air toward (visible as network backlog) are
// killed before any is delivered — their branch shares are genuinely
// lost, which is the churn regime replicas exist for. At most one
// replica per partition dies and never the origin, so every row stays
// reachable. The fail-slow baseline waits out the overlay's operation
// deadline; replica-balanced reads recover by hedging pulls and
// re-showering the missing partitions through live siblings —
// aggregated scans included, whose per-partition states the claim
// dedup keeps exactly-once.
func ChurnRun(c *core.Cluster, plan *physical.Plan) (ChurnResult, error) {
	net := c.Net()
	before := net.Stats()
	ex := c.Engine(0).Start(plan, nil)
	// The first-hop branch envelopes are now queued; kill their targets.
	want := int(float64(c.Size()) * ChurnDeadFraction)
	origin := c.Peers()[0].ID()
	byPath := make(map[string]bool)
	dead := 0
	kill := func(i int) {
		p := c.Peers()[i]
		if p.ID() == origin || !net.Alive(p.ID()) {
			return
		}
		if path := p.Path().String(); !byPath[path] {
			byPath[path] = true
			c.Kill(i)
			dead++
		}
	}
	for i := 0; i < c.Size() && dead < want; i++ {
		if net.Load(c.Peers()[i].ID()) > 0 {
			kill(i)
		}
	}
	for i := 0; i < c.Size() && dead < want; i++ {
		kill(i)
	}
	ex.Wait()
	net.Settle()
	after := net.Stats()
	return ChurnResult{
		Rows:     len(ex.Result()),
		Dead:     dead,
		Msgs:     after.MessagesSent - before.MessagesSent,
		Bytes:    after.BytesSent - before.BytesSent,
		SimMS:    float64(ex.Elapsed().Microseconds()) / 1000,
		TtfrMS:   float64(ex.TimeToFirst().Microseconds()) / 1000,
		Bindings: ex.Result(),
	}, nil
}

func mustParse(src string) *vql.Query {
	q, err := vql.ParseQuery(src)
	if err != nil {
		panic(fmt.Sprintf("benchscen: %v", err))
	}
	return q
}

// GroupByAggQuery is the in-network aggregation scenario: venues with
// their publication counts — many matching rows folding into few
// groups, the shape peer-side partial aggregation exists for.
const GroupByAggQuery = `SELECT ?c, count(*) AS ?n WHERE {(?u,'published_in',?c)} GROUP BY ?c`

// aggOptions forces one aggregation strategy while keeping the rest of
// the optimizer at its defaults.
func aggOptions(pushdown bool) optimizer.Options {
	opt := optimizer.DefaultOptions()
	if pushdown {
		opt.Agg = optimizer.AggPushdown
	} else {
		opt.Agg = optimizer.AggCentralized
	}
	return opt
}

// GroupByAgg builds the aggregation scenario cluster: deterministic
// 64-peer simnet, paged responses, sharded scans, 300 persons (≈600
// publication rows over ~40 venues), with the strategy pinned to
// pushdown or the centralized fallback. The dataset is returned for
// reference-equivalence checks.
func GroupByAgg(pushdown bool) (*core.Cluster, []triple.Triple) {
	c := core.NewCluster(core.Config{
		Peers: Peers, Seed: 17, RangeShards: 4, PageSize: ScanPageSize,
		Optimizer: aggOptions(pushdown),
	})
	ds := workload.Generate(workload.Options{Seed: 18, Persons: 300})
	c.BulkInsert(ds.Triples...)
	return c, ds.Triples
}

// GroupByAggChurn is the replicated variant of the aggregation
// scenario for ChurnRun: ChurnPeers×ChurnReplicas nodes, caches warmed
// from peer 0 so failover has sibling sets to work with.
func GroupByAggChurn(pushdown bool) (*core.Cluster, []triple.Triple) {
	c := core.NewCluster(core.Config{
		Peers: ChurnPeers, Replicas: ChurnReplicas, Seed: 19,
		RangeShards: 4, PageSize: ScanPageSize, ProbeParallelism: 2,
		Optimizer: aggOptions(pushdown),
	})
	ds := workload.Generate(workload.Options{Seed: 18, Persons: 300})
	c.BulkInsert(ds.Triples...)
	if _, err := c.QueryFrom(0, GroupByAggQuery); err != nil {
		panic(fmt.Sprintf("benchscen: group-by churn warmup: %v", err))
	}
	c.Net().Settle()
	return c, ds.Triples
}

// GroupByAggPlan compiles the aggregation scenario query with the
// strategy pinned.
func GroupByAggPlan(pushdown bool) (*physical.Plan, error) {
	plan, err := physical.CompileQuery(mustParse(GroupByAggQuery))
	if err != nil {
		return nil, err
	}
	plan.Tail.AggPushdown = pushdown && physical.AggPushdownable(plan)
	return plan, nil
}

// Scan builds the paged full-scan scenario (300 persons, page size
// ScanPageSize) and returns the dataset for the page-bound
// computation.
func Scan() (*core.Cluster, []triple.Triple) {
	c := core.NewCluster(core.Config{
		Peers: Peers, Seed: 14, RangeShards: 4, PageSize: ScanPageSize,
	})
	ds := workload.Generate(workload.Options{Seed: 15, Persons: 300})
	c.BulkInsert(ds.Triples...)
	return c, ds.Triples
}

// PageBound is the byte ceiling one paged range response may reach for
// the given dataset: the simnet header estimate, the response envelope
// with continuation token, and pageSize entries of the largest entry
// the dataset can produce.
func PageBound(ts []triple.Triple, pageSize int) int {
	maxEntry := 0
	for _, tr := range ts {
		for _, kind := range triple.AllIndexKinds {
			e := store.Entry{Kind: kind, Key: triple.IndexKey(tr, kind), Triple: tr}
			if w := e.WireSize(); w > maxEntry {
				maxEntry = w
			}
		}
	}
	const headerAndEnvelope = 64 + 40 + 96 // simnet header + resp base + continuation
	return headerAndEnvelope + pageSize*maxEntry
}
