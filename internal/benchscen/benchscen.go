// Package benchscen defines the message-layer benchmark scenarios in
// ONE place: cmd/benchjson (the BENCH_PR3.json trend record), the
// bench_test.go benchmarks, and the msgbudget_test.go CI regression
// guard all build their clusters and plans here, so the budgets
// calibrated against the recorded numbers measure the same workload by
// construction — a seed or dataset tweak cannot silently drift one
// copy away from the others.
package benchscen

import (
	"fmt"

	"unistore/internal/core"
	"unistore/internal/keys"
	"unistore/internal/physical"
	"unistore/internal/store"
	"unistore/internal/triple"
	"unistore/internal/vql"
	"unistore/internal/workload"
)

// Peers is the simnet size every scenario runs on.
const Peers = 64

// The scenario queries.
const (
	TopKQuery      = `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`
	IndexJoinQuery = `SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)}`
	ScanQuery      = `SELECT ?n WHERE {(?p,'name',?n)}`
	// ScanPageSize is the page bound of the paged full-scan scenario.
	ScanPageSize = 8
)

// TopK builds the ranked top-5 scenario: deterministic 64-peer
// cluster, sharded scans, bounded window, 300 persons loaded.
func TopK() *core.Cluster {
	c := core.NewCluster(core.Config{
		Peers: Peers, Seed: 12, RangeShards: 8, ProbeParallelism: 2,
	})
	ds := workload.Generate(workload.Options{Seed: 13, Persons: 300})
	c.BulkInsert(ds.Triples...)
	return c
}

// IndexJoin builds the DHT index-join scenario: a trie adapted to the
// dataset (the load-balanced production configuration — the
// order-preserving hash would otherwise cluster every probe key into
// one or two partitions and overstate the cache win), 60 persons
// loaded. disableCache=true is the pre-fast-path baseline.
func IndexJoin(disableCache bool) *core.Cluster {
	ds := workload.Generate(workload.Options{Seed: 9, Persons: 60})
	var samples []keys.Key
	for _, tr := range ds.Triples {
		for _, kind := range triple.AllIndexKinds {
			samples = append(samples, triple.IndexKey(tr, kind))
		}
	}
	c := core.NewCluster(core.Config{
		Peers: Peers, Seed: 8, DisableRouteCache: disableCache,
		AdaptiveSamples: samples,
	})
	c.BulkInsert(ds.Triples...)
	return c
}

// IndexJoinPlan compiles the two-pattern join with the second step
// pinned to the OID index: each person bound by the name scan is
// resolved with one exact OID probe — the DHT index join, whose keys
// scatter over the whole partition space.
func IndexJoinPlan() (*physical.Plan, error) {
	q, err := vql.ParseQuery(IndexJoinQuery)
	if err != nil {
		return nil, fmt.Errorf("benchscen: %w", err)
	}
	plan, err := physical.CompileQuery(q)
	if err != nil {
		return nil, fmt.Errorf("benchscen: %w", err)
	}
	plan.Steps[1].Strat = physical.StratOIDLookup
	return plan, nil
}

// Scan builds the paged full-scan scenario (300 persons, page size
// ScanPageSize) and returns the dataset for the page-bound
// computation.
func Scan() (*core.Cluster, []triple.Triple) {
	c := core.NewCluster(core.Config{
		Peers: Peers, Seed: 14, RangeShards: 4, PageSize: ScanPageSize,
	})
	ds := workload.Generate(workload.Options{Seed: 15, Persons: 300})
	c.BulkInsert(ds.Triples...)
	return c, ds.Triples
}

// PageBound is the byte ceiling one paged range response may reach for
// the given dataset: the simnet header estimate, the response envelope
// with continuation token, and pageSize entries of the largest entry
// the dataset can produce.
func PageBound(ts []triple.Triple, pageSize int) int {
	maxEntry := 0
	for _, tr := range ts {
		for _, kind := range triple.AllIndexKinds {
			e := store.Entry{Kind: kind, Key: triple.IndexKey(tr, kind), Triple: tr}
			if w := e.WireSize(); w > maxEntry {
				maxEntry = w
			}
		}
	}
	const headerAndEnvelope = 64 + 40 + 96 // simnet header + resp base + continuation
	return headerAndEnvelope + pageSize*maxEntry
}
