// Package schema implements UniStore's treatment of schema
// heterogeneity: correspondence (mapping) triples stored in the overlay
// like any other data, queryable explicitly by users — or applied
// automatically by the system to rewrite queries so that data described
// under other schemas is retrieved too (§2: "this additional metadata
// can be queried explicitly by the user – or even automatically by the
// system").
//
// A mapping asserts that two attribute names (typically in different
// namespaces, e.g. dblp:author and ceur:creator) describe the same
// property. Mappings are symmetric and transitive; rewriting uses their
// closure.
package schema

import (
	"fmt"
	"sort"

	"unistore/internal/triple"
	"unistore/internal/vql"
)

// Attribute names of mapping triples. They live in the reserved "map"
// namespace so instance queries never collide with metadata, while
// staying ordinary triples (the paper's uniform treatment of data,
// schema and metadata).
const (
	AttrFrom = "map:from"
	AttrTo   = "map:to"
)

// Mapping is one attribute correspondence.
type Mapping struct {
	From, To string
}

// Triples renders the mapping as storable triples, grouped by a
// mapping OID.
func (m Mapping) Triples(oid string) []triple.Triple {
	return []triple.Triple{
		triple.T(oid, AttrFrom, m.From),
		triple.T(oid, AttrTo, m.To),
	}
}

// FromTriples reassembles mappings from stored triples (the inverse of
// Triples; unpaired fragments are ignored).
func FromTriples(ts []triple.Triple) []Mapping {
	from := map[string]string{}
	to := map[string]string{}
	for _, t := range ts {
		switch t.Attr {
		case AttrFrom:
			from[t.OID] = t.Val.Str
		case AttrTo:
			to[t.OID] = t.Val.Str
		}
	}
	var oids []string
	for oid := range from {
		if _, ok := to[oid]; ok {
			oids = append(oids, oid)
		}
	}
	sort.Strings(oids)
	out := make([]Mapping, 0, len(oids))
	for _, oid := range oids {
		out = append(out, Mapping{From: from[oid], To: to[oid]})
	}
	return out
}

// Closure is the union-find over attribute names induced by a mapping
// set: Equivalents(a) returns every attribute transitively mapped to a.
type Closure struct {
	parent map[string]string
}

// NewClosure builds the closure of the mappings.
func NewClosure(ms []Mapping) *Closure {
	c := &Closure{parent: make(map[string]string)}
	for _, m := range ms {
		c.union(m.From, m.To)
	}
	return c
}

func (c *Closure) find(x string) string {
	p, ok := c.parent[x]
	if !ok {
		c.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	r := c.find(p)
	c.parent[x] = r
	return r
}

func (c *Closure) union(a, b string) {
	ra, rb := c.find(a), c.find(b)
	if ra != rb {
		// Deterministic root: lexicographically smaller wins.
		if rb < ra {
			ra, rb = rb, ra
		}
		c.parent[rb] = ra
	}
}

// Equivalents returns all attributes equivalent to attr (including
// attr itself), sorted. Attributes never mentioned in a mapping are
// singletons.
func (c *Closure) Equivalents(attr string) []string {
	root := c.find(attr)
	var out []string
	for x := range c.parent {
		if c.find(x) == root {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		out = []string{attr}
	}
	sort.Strings(out)
	return out
}

// Same reports whether two attributes are equivalent under the closure.
func (c *Closure) Same(a, b string) bool {
	if a == b {
		return true
	}
	return c.find(a) == c.find(b)
}

// MaxRewrites bounds the number of rewritten query variants, keeping
// the combinatorial expansion of multi-pattern queries in check.
const MaxRewrites = 64

// Rewrite expands a query across the closure: every ground attribute is
// replaced by each of its equivalents, producing up to MaxRewrites
// variant queries (the original first). Executing all variants and
// uniting the results answers the query over heterogeneous schemas.
func Rewrite(q *vql.Query, c *Closure) []*vql.Query {
	variants := []*vql.Query{q}
	for pi, pat := range q.Where {
		if pat.A.IsVar() || pat.A.Val.Kind != triple.KindString {
			continue
		}
		eqs := c.Equivalents(pat.A.Val.Str)
		if len(eqs) <= 1 {
			continue
		}
		var expanded []*vql.Query
		for _, v := range variants {
			for _, eq := range eqs {
				if len(expanded) >= MaxRewrites {
					break
				}
				nv := cloneQuery(v)
				nv.Where[pi].A = vql.Lit(eq)
				expanded = append(expanded, nv)
			}
		}
		variants = expanded
	}
	// Deduplicate (the original is among the expansions).
	seen := map[string]bool{}
	var out []*vql.Query
	for _, v := range variants {
		s := v.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, v)
		}
	}
	return out
}

func cloneQuery(q *vql.Query) *vql.Query {
	nq := *q
	nq.Where = append([]vql.Pattern(nil), q.Where...)
	nq.Select = append([]string(nil), q.Select...)
	nq.Filters = append([]vql.Expr(nil), q.Filters...)
	nq.OrderBy = append([]vql.OrderKey(nil), q.OrderBy...)
	nq.Skyline = append([]vql.SkylineKey(nil), q.Skyline...)
	return &nq
}

// MappingQuery is the VQL query retrieving every mapping triple — what
// the system issues automatically before rewriting.
func MappingQuery() *vql.Query {
	q, err := vql.ParseQuery(fmt.Sprintf(
		`SELECT ?m,?f,?t WHERE {(?m,'%s',?f) (?m,'%s',?t)}`, AttrFrom, AttrTo))
	if err != nil {
		panic("schema: invalid mapping query: " + err.Error())
	}
	return q
}
