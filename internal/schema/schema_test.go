package schema

import (
	"reflect"
	"testing"

	"unistore/internal/algebra"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

func TestMappingTriplesRoundTrip(t *testing.T) {
	ms := []Mapping{
		{From: "dblp:author", To: "ceur:creator"},
		{From: "dblp:title", To: "ceur:name"},
	}
	var ts []triple.Triple
	for i, m := range ms {
		ts = append(ts, m.Triples(triple.GenerateOID("map"))...)
		_ = i
	}
	back := FromTriples(ts)
	if len(back) != 2 {
		t.Fatalf("reassembled %d mappings", len(back))
	}
	found := map[Mapping]bool{}
	for _, m := range back {
		found[m] = true
	}
	for _, m := range ms {
		if !found[m] {
			t.Errorf("mapping %v lost", m)
		}
	}
}

func TestFromTriplesIgnoresFragments(t *testing.T) {
	ts := []triple.Triple{
		triple.T("m1", AttrFrom, "a"),
		// m1 has no map:to; m2 has no map:from.
		triple.T("m2", AttrTo, "b"),
	}
	if got := FromTriples(ts); len(got) != 0 {
		t.Errorf("fragments produced mappings: %v", got)
	}
}

func TestClosureTransitive(t *testing.T) {
	c := NewClosure([]Mapping{
		{From: "a", To: "b"},
		{From: "b", To: "c"},
		{From: "x", To: "y"},
	})
	if !c.Same("a", "c") {
		t.Error("closure must be transitive")
	}
	if !c.Same("c", "a") {
		t.Error("closure must be symmetric")
	}
	if c.Same("a", "x") {
		t.Error("distinct classes must not merge")
	}
	if got := c.Equivalents("b"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("equivalents = %v", got)
	}
	if got := c.Equivalents("unmapped"); !reflect.DeepEqual(got, []string{"unmapped"}) {
		t.Errorf("unmapped attr must be a singleton: %v", got)
	}
}

func TestRewriteExpandsAttributes(t *testing.T) {
	c := NewClosure([]Mapping{{From: "name", To: "ceur:fullname"}})
	q, err := vql.ParseQuery(`SELECT ?n WHERE {(?p,'name',?n)}`)
	if err != nil {
		t.Fatal(err)
	}
	variants := Rewrite(q, c)
	if len(variants) != 2 {
		t.Fatalf("variants = %d, want 2", len(variants))
	}
	attrs := map[string]bool{}
	for _, v := range variants {
		attrs[v.Where[0].A.Val.Str] = true
	}
	if !attrs["name"] || !attrs["ceur:fullname"] {
		t.Errorf("rewrite attrs = %v", attrs)
	}
}

func TestRewriteNoMappingsIsIdentity(t *testing.T) {
	c := NewClosure(nil)
	q, _ := vql.ParseQuery(`SELECT ?n WHERE {(?p,'name',?n) (?p,'age',?a)}`)
	variants := Rewrite(q, c)
	if len(variants) != 1 || variants[0].String() != q.String() {
		t.Errorf("identity rewrite broken: %v", variants)
	}
}

func TestRewriteBounded(t *testing.T) {
	// 4 patterns × 4-way equivalence each = 256 combos; must cap.
	var ms []Mapping
	for _, group := range []string{"a", "b", "c", "d"} {
		for i := 1; i < 4; i++ {
			ms = append(ms, Mapping{From: group + "0", To: group + string(rune('0'+i))})
		}
	}
	c := NewClosure(ms)
	q, _ := vql.ParseQuery(`SELECT * WHERE {(?w,'a0',?x) (?w,'b0',?y) (?w,'c0',?z) (?w,'d0',?u)}`)
	variants := Rewrite(q, c)
	if len(variants) > MaxRewrites {
		t.Errorf("rewrite produced %d variants, cap is %d", len(variants), MaxRewrites)
	}
	if len(variants) < 2 {
		t.Error("rewrite must expand at least some variants")
	}
}

func TestRewriteRecallOverHeterogeneousData(t *testing.T) {
	// Two data providers describe persons under different schemas; a
	// query over one schema plus the mapping closure retrieves both.
	data := []triple.Triple{
		triple.T("p1", "name", "alice"),
		triple.T("p2", "ceur:fullname", "bob"),
	}
	c := NewClosure([]Mapping{{From: "name", To: "ceur:fullname"}})
	q, _ := vql.ParseQuery(`SELECT ?n WHERE {(?p,'name',?n)}`)
	src := &algebra.MemSource{Triples: data}
	seen := map[string]bool{}
	for _, v := range Rewrite(q, c) {
		lp, err := algebra.Build(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range algebra.Execute(lp, src) {
			seen[b["n"].Str] = true
		}
	}
	if !seen["alice"] || !seen["bob"] {
		t.Errorf("recall = %v, want both providers' data", seen)
	}
	// Without mappings only one shows up.
	lp, _ := algebra.Build(q)
	if got := algebra.Execute(lp, src); len(got) != 1 {
		t.Errorf("unmapped recall = %d, want 1", len(got))
	}
}

func TestMappingQueryParses(t *testing.T) {
	q := MappingQuery()
	if len(q.Where) != 2 {
		t.Errorf("mapping query = %s", q)
	}
}

func TestRewriteDoesNotMutateOriginal(t *testing.T) {
	c := NewClosure([]Mapping{{From: "name", To: "nickname"}})
	q, _ := vql.ParseQuery(`SELECT ?n WHERE {(?p,'name',?n)}`)
	before := q.String()
	Rewrite(q, c)
	if q.String() != before {
		t.Error("Rewrite mutated the input query")
	}
}
