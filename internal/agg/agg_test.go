package agg

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"unistore/internal/triple"
)

func specAll() *Spec {
	return &Spec{
		GroupBy: []string{"g"},
		Items: []Item{
			{Func: Count, Out: "cnt"},
			{Func: Count, Var: "v", Out: "cntv"},
			{Func: Count, Var: "v", Distinct: true, Out: "cntd"},
			{Func: Sum, Var: "v", Out: "sum"},
			{Func: Avg, Var: "v", Out: "avg"},
			{Func: Min, Var: "v", Out: "min"},
			{Func: Max, Var: "v", Out: "max"},
		},
	}
}

func row(g string, v float64) map[string]triple.Value {
	return map[string]triple.Value{"g": triple.S(g), "v": triple.N(v)}
}

// TestMergeEquivalence is the mergeability property: aggregating rows
// in one table must equal splitting them across partial tables in any
// partition and merging the encoded states.
func TestMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var rows []map[string]triple.Value
	for i := 0; i < 500; i++ {
		rows = append(rows, row(fmt.Sprintf("g%d", rng.Intn(7)), float64(rng.Intn(50))))
	}
	whole := NewTable(specAll())
	for _, r := range rows {
		whole.Add(r)
	}
	parts := make([]*Table, 5)
	for i := range parts {
		parts[i] = NewTable(specAll())
	}
	for _, r := range rows {
		parts[rng.Intn(len(parts))].Add(r)
	}
	merged := NewTable(specAll())
	for _, p := range parts {
		enc := EncodeStates(p.States())
		dec, err := DecodeStates(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		merged.MergeStates(dec)
	}
	if !reflect.DeepEqual(merged.Rows(), whole.Rows()) {
		t.Fatalf("merged rows diverged:\n got %v\nwant %v", merged.Rows(), whole.Rows())
	}
}

// TestDistinctSpill: the exact set must spill past the cap and keep
// counting exactly; merging exact and spilled sets must agree with a
// set that saw everything.
func TestDistinctSpill(t *testing.T) {
	a, b, all := NewDistinctSet(), NewDistinctSet(), NewDistinctSet()
	for i := 0; i < DistinctExactCap*2; i++ {
		lex := fmt.Sprintf("v%04d", i)
		all.Add(lex)
		if i%2 == 0 {
			a.Add(lex)
		} else {
			b.Add(lex)
		}
	}
	if !all.Spilled() {
		t.Fatal("set past the cap did not spill")
	}
	if all.Len() != DistinctExactCap*2 {
		t.Fatalf("spilled set lost values: %d", all.Len())
	}
	a.Merge(b) // exact + exact crossing the cap mid-merge
	if a.Len() != DistinctExactCap*2 {
		t.Fatalf("merged set has %d values, want %d", a.Len(), DistinctExactCap*2)
	}
	// Duplicates across representations must not double-count.
	c := NewDistinctSet()
	c.Add("v0000")
	a.Merge(c)
	if a.Len() != DistinctExactCap*2 {
		t.Fatalf("duplicate inflated the merged set to %d", a.Len())
	}
}

// TestEncodeRoundTrip covers values of both kinds, unbound aggregates
// and both distinct representations.
func TestEncodeRoundTrip(t *testing.T) {
	sp := specAll()
	tbl := NewTable(sp)
	tbl.Add(map[string]triple.Value{"g": triple.S("x")}) // v unbound
	tbl.Add(row("y", 3))
	tbl.Add(row("y", 5))
	big := NewTable(sp)
	for i := 0; i < DistinctExactCap+10; i++ {
		big.Add(row("z", float64(i)))
	}
	for _, src := range []*Table{tbl, big} {
		states := src.States()
		dec, err := DecodeStates(EncodeStates(states))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		back := NewTable(sp)
		back.MergeStates(dec)
		if !reflect.DeepEqual(back.Rows(), src.Rows()) {
			t.Fatalf("round trip diverged:\n got %v\nwant %v", back.Rows(), src.Rows())
		}
	}
}

// TestDecodeCorrupt: truncated or garbage buffers must error, never
// panic.
func TestDecodeCorrupt(t *testing.T) {
	tbl := NewTable(specAll())
	tbl.Add(row("g", 1))
	enc := EncodeStates(tbl.States())
	for cut := 1; cut < len(enc); cut += 3 {
		if _, err := DecodeStates(enc[:cut]); err == nil {
			// A prefix that happens to parse as a shorter batch is
			// acceptable; a panic is not (reaching here is the test).
			continue
		}
	}
	if _, err := DecodeStates([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}); err == nil {
		t.Error("absurd state count decoded without error")
	}
}

// TestGlobalAggregateEmptyInput: a global aggregate over zero rows
// still yields its single row with count 0 and unbound min/max/avg.
func TestGlobalAggregateEmptyInput(t *testing.T) {
	sp := &Spec{Items: []Item{{Func: Count, Out: "n"}, {Func: Min, Var: "v", Out: "lo"}}}
	rows := NewTable(sp).Rows()
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	if n := rows[0]["n"]; n.Num != 0 {
		t.Fatalf("count over nothing = %v, want 0", n)
	}
	if _, ok := rows[0]["lo"]; ok {
		t.Fatal("min over nothing must stay unbound")
	}
}

// TestMatchTriple mirrors algebra.MatchPattern semantics, including
// the repeated-variable equality constraint.
func TestMatchTriple(t *testing.T) {
	sp := &Spec{Pat: [3]Term{VarTerm("p"), LitTerm(triple.S("name")), VarTerm("n")}}
	if _, ok := sp.MatchTriple(triple.T("o1", "age", "x")); ok {
		t.Fatal("attribute literal must filter")
	}
	row, ok := sp.MatchTriple(triple.T("o1", "name", "alice"))
	if !ok || row["p"].Str != "o1" || row["n"].Str != "alice" {
		t.Fatalf("match failed: %v %v", row, ok)
	}
	// Repeated variable: (?x,'attr',?x) only matches OID == value.
	rep := &Spec{Pat: [3]Term{VarTerm("x"), VarTerm("a"), VarTerm("x")}}
	if _, ok := rep.MatchTriple(triple.T("o1", "name", "o2")); ok {
		t.Fatal("repeated variable must require equal bindings")
	}
	if _, ok := rep.MatchTriple(triple.T("o1", "name", "o1")); !ok {
		t.Fatal("repeated variable with equal values must match")
	}
}
