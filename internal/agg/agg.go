// Package agg implements UniStore's in-network aggregation states: the
// typed, mergeable partial aggregates (COUNT, SUM, AVG as sum+count,
// MIN/MAX, COUNT DISTINCT via a bounded exact set with a spill-to-hash
// fallback) that GROUP BY queries accumulate, keyed by group tuple,
// with a binary wire encoding so peers can answer range and lookup
// operations with per-group states instead of rows.
//
// The same Table runs in three places with identical semantics: the
// in-memory reference executor (package algebra) aggregates oracle
// bindings through it, the serving peers (package pgrid) build
// per-partition partial tables from their stored entries, and the
// query coordinator (package physical) merges partial states — or, on
// the centralized fallback path, raw rows — into the final groups.
// Because every path shares this one implementation, pushdown and
// centralized aggregation agree bit-for-bit by construction.
//
// States are mergeable in the algebraic sense: merging the states of
// any disjoint partition of the input rows yields the state of the
// whole input, in any merge order. That is what makes the overlay's
// failover machinery (per-partition stream claims, coverage-based
// re-showers) sufficient for exactness: as long as every partition's
// rows are aggregated into exactly one delivered state sequence, the
// coordinator's merge is exact no matter how retries interleave.
package agg

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"unistore/internal/triple"
)

// Func enumerates the aggregate functions.
type Func uint8

// Aggregate functions. Avg is carried as sum+count and finalized at
// the coordinator, which is what keeps it mergeable.
const (
	Count Func = iota // count(*) with Var == "", else count(?v)
	Sum
	Avg
	Min
	Max
)

// String names the function as it appears in VQL.
func (f Func) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	}
	return fmt.Sprintf("func(%d)", uint8(f))
}

// Item is one aggregate of a query's select list.
type Item struct {
	Func Func
	// Var is the argument variable ("" for count(*)).
	Var string
	// Distinct counts distinct argument values (count(DISTINCT ?v)).
	Distinct bool
	// Out is the output variable the finalized value binds to.
	Out string
}

// String renders the item in VQL syntax.
func (it Item) String() string {
	arg := "*"
	if it.Var != "" {
		arg = "?" + it.Var
		if it.Distinct {
			arg = "DISTINCT " + arg
		}
	}
	return fmt.Sprintf("%s(%s) AS ?%s", it.Func, arg, it.Out)
}

// Term is one position of the triple pattern a peer-side aggregation
// matches entries against — a literal value or a variable. The zero
// Term matches anything and binds nothing. It mirrors vql.Term without
// importing the query language, so the overlay layer stays independent
// of it.
type Term struct {
	IsLit bool
	Var   string
	Lit   triple.Value
}

// LitTerm builds a literal term.
func LitTerm(v triple.Value) Term { return Term{IsLit: true, Lit: v} }

// VarTerm builds a variable term.
func VarTerm(name string) Term { return Term{Var: name} }

// Spec describes one aggregation: the grouping variables, the
// aggregate items, and — for peer-side evaluation — the triple pattern
// whose bindings feed the groups. An empty GroupBy with items is a
// global aggregate (one group); GroupBy without items is DISTINCT.
type Spec struct {
	GroupBy []string
	Items   []Item
	// Pat is the (S, A, V) pattern peer-side aggregation unifies stored
	// triples with. Coordinator-side tables (fed bindings, not entries)
	// leave it zero.
	Pat [3]Term
}

// WireSize estimates the spec's serialized size for simnet accounting.
func (sp *Spec) WireSize() int {
	s := 8
	for _, g := range sp.GroupBy {
		s += len(g) + 1
	}
	for _, it := range sp.Items {
		s += len(it.Var) + len(it.Out) + 3
	}
	for _, t := range sp.Pat {
		s += len(t.Var) + len(t.Lit.Str) + 2
	}
	return s
}

// MatchTriple unifies the spec's pattern with a stored triple,
// returning the variable bindings. Semantics mirror
// algebra.MatchPattern: a repeated variable must bind equal values.
func (sp *Spec) MatchTriple(tr triple.Triple) (map[string]triple.Value, bool) {
	row := make(map[string]triple.Value, 3)
	bind := func(t Term, v triple.Value) bool {
		if t.IsLit {
			return t.Lit.Equal(v)
		}
		if t.Var == "" {
			return true
		}
		if old, ok := row[t.Var]; ok {
			return old.Equal(v)
		}
		row[t.Var] = v
		return true
	}
	if !bind(sp.Pat[0], triple.S(tr.OID)) {
		return nil, false
	}
	if !bind(sp.Pat[1], triple.S(tr.Attr)) {
		return nil, false
	}
	if !bind(sp.Pat[2], tr.Val) {
		return nil, false
	}
	return row, true
}

// --- Distinct sets -----------------------------------------------------------

// DistinctExactCap bounds the exact representation of a distinct set:
// up to this many values are kept verbatim; past it the set spills to
// 64-bit hashes, which stay exact up to hash collisions (~2⁻⁶⁴ per
// pair) while bounding memory and wire size per value.
const DistinctExactCap = 256

// DistinctSet counts distinct values. Exact up to DistinctExactCap
// values, hashed beyond. Merging two sets (in either representation)
// yields the set of the union of their inputs, because hashing is
// deterministic: the same value hashes identically on every peer.
type DistinctSet struct {
	exact  map[string]struct{}
	hashed map[uint64]struct{}
}

// NewDistinctSet returns an empty set.
func NewDistinctSet() *DistinctSet {
	return &DistinctSet{exact: make(map[string]struct{})}
}

// Add inserts one value by its lexical encoding.
func (d *DistinctSet) Add(lex string) {
	if d.hashed != nil {
		d.hashed[hash64(lex)] = struct{}{}
		return
	}
	d.exact[lex] = struct{}{}
	if len(d.exact) > DistinctExactCap {
		d.spill()
	}
}

// spill converts the exact set to the hashed representation.
func (d *DistinctSet) spill() {
	d.hashed = make(map[uint64]struct{}, len(d.exact))
	for lex := range d.exact {
		d.hashed[hash64(lex)] = struct{}{}
	}
	d.exact = nil
}

// Len reports the distinct count.
func (d *DistinctSet) Len() int {
	if d.hashed != nil {
		return len(d.hashed)
	}
	return len(d.exact)
}

// Spilled reports whether the set switched to the hashed fallback.
func (d *DistinctSet) Spilled() bool { return d.hashed != nil }

// Merge folds another set into this one. If either side has spilled,
// the union is hashed; otherwise the exact union may itself spill.
func (d *DistinctSet) Merge(o *DistinctSet) {
	if o == nil {
		return
	}
	if o.hashed != nil && d.hashed == nil {
		d.spill()
	}
	if d.hashed != nil {
		if o.hashed != nil {
			for h := range o.hashed {
				d.hashed[h] = struct{}{}
			}
		} else {
			for lex := range o.exact {
				d.hashed[hash64(lex)] = struct{}{}
			}
		}
		return
	}
	for lex := range o.exact {
		// Add handles a spill mid-merge: once the cap is crossed, the
		// remaining values land in the hashed set.
		d.Add(lex)
	}
}

// hash64 is FNV-1a, the deterministic value hash of the spill
// representation.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// --- States ------------------------------------------------------------------

// Acc is the mergeable accumulator of one aggregate item over one
// group. Only the fields the item's function needs are meaningful, but
// the struct is uniform so states encode and merge without per-item
// branching.
type Acc struct {
	// Count is the number of rows where the argument was bound (all
	// rows for count(*)).
	Count int64
	// NumCount/Sum accumulate the numeric interpretation of the
	// argument (SUM and AVG skip values that are neither numbers nor
	// numeric strings, mirroring SQL's treatment of NULLs).
	NumCount int64
	Sum      float64
	// Val/HasVal carry the running MIN or MAX under triple.Value order.
	Val    triple.Value
	HasVal bool
	// Distinct is the distinct-value set (count DISTINCT only).
	Distinct *DistinctSet
}

// State is the partial aggregate of one group: the group tuple plus
// one accumulator per spec item.
type State struct {
	// Key holds the group-by values, aligned with Spec.GroupBy.
	Key []triple.Value
	// Accs holds one accumulator per Spec.Items entry.
	Accs []Acc
}

// groupKey renders a group tuple as the canonical key: lexical
// encodings joined by NUL (the same shape algebra.Key uses). It is the
// single encoding behind both the table's map keys and the wire
// cursor the paged protocol pages over.
func groupKey(vals []triple.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteString(v.Lexical())
		sb.WriteByte(0)
	}
	return sb.String()
}

// GroupKey renders the state's group tuple as the canonical
// map/cursor key.
func (s *State) GroupKey() string { return groupKey(s.Key) }

// add folds one row into the state's accumulators.
func (s *State) add(items []Item, row map[string]triple.Value) {
	for i, it := range items {
		a := &s.Accs[i]
		if it.Var == "" { // count(*)
			a.Count++
			continue
		}
		v, ok := row[it.Var]
		if !ok {
			continue
		}
		a.Count++
		switch it.Func {
		case Count:
			if it.Distinct {
				if a.Distinct == nil {
					a.Distinct = NewDistinctSet()
				}
				a.Distinct.Add(v.Lexical())
			}
		case Sum, Avg:
			if f, ok := v.AsNumber(); ok {
				a.NumCount++
				a.Sum += f
			}
		case Min:
			if !a.HasVal || v.Compare(a.Val) < 0 {
				a.Val, a.HasVal = v, true
			}
		case Max:
			if !a.HasVal || v.Compare(a.Val) > 0 {
				a.Val, a.HasVal = v, true
			}
		}
	}
}

// mergeAcc folds another accumulator of the same item into a.
func mergeAcc(it Item, a, o *Acc) {
	a.Count += o.Count
	a.NumCount += o.NumCount
	a.Sum += o.Sum
	if o.HasVal {
		if !a.HasVal {
			a.Val, a.HasVal = o.Val, true
		} else if it.Func == Min && o.Val.Compare(a.Val) < 0 {
			a.Val = o.Val
		} else if it.Func == Max && o.Val.Compare(a.Val) > 0 {
			a.Val = o.Val
		}
	}
	if o.Distinct != nil {
		if a.Distinct == nil {
			a.Distinct = NewDistinctSet()
		}
		a.Distinct.Merge(o.Distinct)
	}
}

// finalize produces the item's result value; ok is false when the
// aggregate is undefined over the group's rows (AVG with no numeric
// input, MIN/MAX with no bound input), in which case the output
// variable stays unbound — SQL's NULL.
func (a *Acc) finalize(it Item) (triple.Value, bool) {
	switch it.Func {
	case Count:
		if it.Distinct {
			n := 0
			if a.Distinct != nil {
				n = a.Distinct.Len()
			}
			return triple.N(float64(n)), true
		}
		return triple.N(float64(a.Count)), true
	case Sum:
		return triple.N(a.Sum), true
	case Avg:
		if a.NumCount == 0 {
			return triple.Value{}, false
		}
		return triple.N(a.Sum / float64(a.NumCount)), true
	case Min, Max:
		if !a.HasVal {
			return triple.Value{}, false
		}
		return a.Val, true
	}
	return triple.Value{}, false
}

// --- Table -------------------------------------------------------------------

// Table accumulates group states for one spec. It is not safe for
// concurrent use; callers serialize (the executor under its pipeline
// lock, serving peers on their worker goroutine).
type Table struct {
	spec   *Spec
	groups map[string]*State
}

// NewTable returns an empty table for the spec.
func NewTable(spec *Spec) *Table {
	return &Table{spec: spec, groups: make(map[string]*State)}
}

// Spec returns the table's aggregation spec.
func (t *Table) Spec() *Spec { return t.spec }

// Len reports the number of groups.
func (t *Table) Len() int { return len(t.groups) }

// group finds or creates the state for a row's group tuple.
func (t *Table) group(key []triple.Value) *State {
	k := groupKey(key)
	st, ok := t.groups[k]
	if !ok {
		st = &State{Key: key, Accs: make([]Acc, len(t.spec.Items))}
		t.groups[k] = st
	}
	return st
}

// Add folds one input row (a variable binding) into its group. A group
// variable missing from the row binds the zero value, so both the
// distributed and the reference path treat such rows identically.
func (t *Table) Add(row map[string]triple.Value) {
	key := make([]triple.Value, len(t.spec.GroupBy))
	for i, g := range t.spec.GroupBy {
		key[i] = row[g]
	}
	t.group(key).add(t.spec.Items, row)
}

// AddTriple matches a stored triple against the spec's pattern and,
// on success, folds the resulting row into its group — the peer-side
// ingestion path. It reports whether the triple matched.
func (t *Table) AddTriple(tr triple.Triple) bool {
	row, ok := t.spec.MatchTriple(tr)
	if !ok {
		return false
	}
	t.Add(row)
	return true
}

// MergeState folds one partial state (a remote peer's group) into the
// table — the coordinator's merge path.
func (t *Table) MergeState(s State) {
	dst := t.group(s.Key)
	for i := range t.spec.Items {
		if i < len(s.Accs) {
			mergeAcc(t.spec.Items[i], &dst.Accs[i], &s.Accs[i])
		}
	}
}

// MergeStates folds a batch of partial states.
func (t *Table) MergeStates(states []State) {
	for _, s := range states {
		t.MergeState(s)
	}
}

// States snapshots the table's groups sorted by group key — the
// deterministic order the paged wire protocol's cursor pages over.
func (t *Table) States() []State {
	keys := make([]string, 0, len(t.groups))
	for k := range t.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]State, len(keys))
	for i, k := range keys {
		out[i] = *t.groups[k]
	}
	return out
}

// Rows finalizes the table: one output row per group with the group
// variables and each item's output variable bound (undefined
// aggregates leave their output unbound). A global aggregate (empty
// GroupBy) over zero input rows still yields its single row — COUNT
// over nothing is 0, as in SQL. Rows are ordered by group key.
func (t *Table) Rows() []map[string]triple.Value {
	states := t.States()
	if len(states) == 0 && len(t.spec.GroupBy) == 0 && len(t.spec.Items) > 0 {
		states = []State{{Accs: make([]Acc, len(t.spec.Items))}}
	}
	out := make([]map[string]triple.Value, 0, len(states))
	for _, st := range states {
		row := make(map[string]triple.Value, len(st.Key)+len(st.Accs))
		for i, g := range t.spec.GroupBy {
			if i < len(st.Key) {
				row[g] = st.Key[i]
			}
		}
		for i, it := range t.spec.Items {
			if v, ok := st.Accs[i].finalize(it); ok {
				row[it.Out] = v
			}
		}
		out = append(out, row)
	}
	return out
}

// --- Wire encoding -----------------------------------------------------------

// The encoding is a plain length-prefixed binary layout: uvarint
// counts, values as a kind byte plus either a length-prefixed string
// or 8 float bits, accumulators with a presence bitmap for the
// optional parts. It exists so partial states ride query responses as
// opaque bytes — sized honestly for the simnet's byte accounting and
// decoded only by the coordinator that knows the spec.

// EncodeStates serializes a batch of states.
func EncodeStates(states []State) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(states)))
	for _, s := range states {
		buf = binary.AppendUvarint(buf, uint64(len(s.Key)))
		for _, v := range s.Key {
			buf = appendValue(buf, v)
		}
		buf = binary.AppendUvarint(buf, uint64(len(s.Accs)))
		for _, a := range s.Accs {
			buf = appendAcc(buf, a)
		}
	}
	return buf
}

// DecodeStates parses a batch of states.
func DecodeStates(data []byte) ([]State, error) {
	d := &decoder{buf: data}
	n := d.uvarint()
	if n > uint64(len(data)) {
		return nil, fmt.Errorf("agg: corrupt state count %d", n)
	}
	out := make([]State, 0, n)
	for i := uint64(0); i < n; i++ {
		var s State
		kn := d.uvarint()
		if kn > uint64(len(data)) {
			return nil, fmt.Errorf("agg: corrupt key arity %d", kn)
		}
		for j := uint64(0); j < kn; j++ {
			s.Key = append(s.Key, d.value())
		}
		an := d.uvarint()
		if an > uint64(len(data)) {
			return nil, fmt.Errorf("agg: corrupt acc arity %d", an)
		}
		for j := uint64(0); j < an; j++ {
			s.Accs = append(s.Accs, d.acc())
		}
		if d.err != nil {
			return nil, d.err
		}
		out = append(out, s)
	}
	return out, d.err
}

func appendValue(buf []byte, v triple.Value) []byte {
	buf = append(buf, byte(v.Kind))
	if v.Kind == triple.KindNumber {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], floatBits(v.Num))
		return append(buf, b[:]...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
	return append(buf, v.Str...)
}

const (
	accHasVal byte = 1 << iota
	accDistinctExact
	accDistinctHashed
)

func appendAcc(buf []byte, a Acc) []byte {
	var flags byte
	if a.HasVal {
		flags |= accHasVal
	}
	if a.Distinct != nil {
		if a.Distinct.Spilled() {
			flags |= accDistinctHashed
		} else {
			flags |= accDistinctExact
		}
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(a.Count))
	buf = binary.AppendUvarint(buf, uint64(a.NumCount))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], floatBits(a.Sum))
	buf = append(buf, b[:]...)
	if a.HasVal {
		buf = appendValue(buf, a.Val)
	}
	if a.Distinct != nil {
		if a.Distinct.Spilled() {
			buf = binary.AppendUvarint(buf, uint64(len(a.Distinct.hashed)))
			for h := range a.Distinct.hashed {
				binary.BigEndian.PutUint64(b[:], h)
				buf = append(buf, b[:]...)
			}
		} else {
			buf = binary.AppendUvarint(buf, uint64(len(a.Distinct.exact)))
			for lex := range a.Distinct.exact {
				buf = binary.AppendUvarint(buf, uint64(len(lex)))
				buf = append(buf, lex...)
			}
		}
	}
	return buf
}

// floatBits maps a float to its canonical IEEE bit pattern.
func floatBits(f float64) uint64 { return math.Float64bits(f) }

// decoder walks the encoded buffer, latching the first error.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("agg: truncated state encoding")
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) value() triple.Value {
	kb := d.bytes(1)
	if d.err != nil {
		return triple.Value{}
	}
	if triple.ValueKind(kb[0]) == triple.KindNumber {
		b := d.bytes(8)
		if d.err != nil {
			return triple.Value{}
		}
		return triple.N(math.Float64frombits(binary.BigEndian.Uint64(b)))
	}
	n := d.uvarint()
	return triple.S(string(d.bytes(int(n))))
}

func (d *decoder) acc() Acc {
	var a Acc
	fb := d.bytes(1)
	if d.err != nil {
		return a
	}
	flags := fb[0]
	a.Count = int64(d.uvarint())
	a.NumCount = int64(d.uvarint())
	if b := d.bytes(8); b != nil {
		a.Sum = math.Float64frombits(binary.BigEndian.Uint64(b))
	}
	if flags&accHasVal != 0 {
		a.Val, a.HasVal = d.value(), true
	}
	switch {
	case flags&accDistinctExact != 0:
		n := d.uvarint()
		if n > uint64(len(d.buf))+1 {
			d.fail()
			return a
		}
		a.Distinct = NewDistinctSet()
		for i := uint64(0); i < n && d.err == nil; i++ {
			l := d.uvarint()
			a.Distinct.Add(string(d.bytes(int(l))))
		}
	case flags&accDistinctHashed != 0:
		n := d.uvarint()
		if n > uint64(len(d.buf))/8+1 {
			d.fail()
			return a
		}
		a.Distinct = &DistinctSet{hashed: make(map[uint64]struct{}, n)}
		for i := uint64(0); i < n && d.err == nil; i++ {
			if b := d.bytes(8); b != nil {
				a.Distinct.hashed[binary.BigEndian.Uint64(b)] = struct{}{}
			}
		}
	}
	return a
}
