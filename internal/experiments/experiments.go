// Package experiments implements the reproduction harness: one function
// per experiment in EXPERIMENTS.md (E1–E12), each returning the table
// the paper's claim corresponds to. cmd/unibench prints these tables;
// bench_test.go reports their headline numbers as benchmark metrics.
//
// Because the demo paper's evaluation is a set of quantified claims
// rather than numbered result tables, every experiment states its claim
// in the table name.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"unistore/internal/chord"
	"unistore/internal/core"
	"unistore/internal/keys"
	"unistore/internal/optimizer"
	"unistore/internal/pgrid"
	"unistore/internal/physical"
	"unistore/internal/simnet"
	"unistore/internal/trace"
	"unistore/internal/triple"
	"unistore/internal/vql"
	"unistore/internal/workload"
)

// Scale trades experiment size for runtime; 1.0 is the full EXPERIMENTS
// configuration, benchmarks may run smaller.
type Scale float64

func (s Scale) n(base int) int {
	v := int(float64(base) * float64(s))
	if v < 2 {
		v = 2
	}
	return v
}

// E1TriplePlacement reproduces Fig. 2: two 3-attribute tuples yield 18
// index entries, spread over the 8-peer trie, with the origin tuples
// reproducible by a single OID lookup from any peer.
func E1TriplePlacement() *trace.Series {
	t := trace.NewSeries("E1 (Fig. 2): triple placement on 8 peers",
		"peer path", "entries", "OID", "A#v", "v")
	c := core.NewCluster(core.Config{Peers: 8, Seed: 1})
	t1 := triple.NewTuple("a12").
		Set("title", triple.S("Similarity...")).
		Set("confname", triple.S("ICDE 2006 - Workshops")).
		Set("year", triple.N(2006))
	t2 := triple.NewTuple("v34").
		Set("title", triple.S("Progressive...")).
		Set("confname", triple.S("ICDE 2005")).
		Set("year", triple.N(2005))
	c.InsertTuple(t1)
	c.InsertTuple(t2)
	total := 0
	for _, p := range c.Peers() {
		st := p.Store()
		o := st.LenKind(triple.ByOID)
		a := st.LenKind(triple.ByAV)
		v := st.LenKind(triple.ByVal)
		total += o + a + v
		t.Add(p.Path().String(), o+a+v, o, a, v)
	}
	t.Add("TOTAL (paper: 18)", total, "", "", "")
	// Reconstruction check: one lookup reproduces the origin tuple.
	res, err := c.Query(`SELECT ?a,?v WHERE {('a12',?a,?v)}`)
	if err != nil {
		panic(err)
	}
	t.Add(fmt.Sprintf("reconstruct a12: %d attrs", len(res.Bindings)), "", "", "", "")
	return t
}

// E2RoutingHops reproduces the "logarithmic search complexity" claim:
// average lookup hops vs. network size tracks log2(n).
func E2RoutingHops(scale Scale) *trace.Series {
	t := trace.NewSeries("E2: routing hops vs. network size (claim: ~log2 n)",
		"peers", "avg hops", "max hops", "log2(n)")
	for _, n := range []int{16, 64, 256, scale.n(1024)} {
		net := simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond), Seed: 2})
		peers := pgrid.BuildBalanced(net, n, 1, pgrid.DefaultConfig())
		peers[0].InsertTripleSync(triple.T("x", "year", "2006"), 1)
		key := triple.AVKey("year", triple.S("2006"))
		sum, maxHops, count := 0, 0, 0
		step := n/64 + 1
		for i := 0; i < n; i += step {
			res := peers[i].LookupSync(triple.ByAV, key)
			sum += res.Hops
			if res.Hops > maxHops {
				maxHops = res.Hops
			}
			count++
		}
		t.Add(n, float64(sum)/float64(count), maxHops, math.Log2(float64(n)))
	}
	return t
}

// E3QueryLatency reproduces the scalability demonstration: "even with
// up to 400 PlanetLab nodes query answer times are still only a couple
// of seconds" — a multi-pattern VQL join under PlanetLab-like delays.
func E3QueryLatency(scale Scale) *trace.Series {
	t := trace.NewSeries("E3: query latency vs. network size, PlanetLab delays (claim: couple of seconds at 400)",
		"peers", "latency", "messages", "results")
	for _, n := range []int{50, 100, 200, scale.n(400)} {
		c := core.NewCluster(core.Config{Peers: n, Seed: 3, Latency: core.LatencyPlanetLab})
		ds := workload.Generate(workload.Options{Seed: 4, Persons: 100})
		c.BulkInsert(ds.Triples...)
		res, err := c.Query(`SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a < 40}`)
		if err != nil {
			panic(err)
		}
		t.Add(n, res.Elapsed, res.Messages, len(res.Bindings))
	}
	return t
}

// E4PlanVariants reproduces the demo's optimizer toggling: "execute
// identical queries sequentially while influencing the integrated
// optimizer ... different performance results".
func E4PlanVariants(scale Scale) *trace.Series {
	t := trace.NewSeries("E4: identical query under forced plan variants",
		"variant", "messages", "latency", "results")
	n := scale.n(64)
	query := `SELECT ?n WHERE {(?p,'email','p7@example.org') (?p,'name',?n)}`
	variants := []struct {
		name string
		opt  optimizer.Options
	}{
		{"optimizer on (auto)", optimizer.DefaultOptions()},
		{"optimizer off (compiled order)", optimizer.Options{Disabled: true}},
		{"force broadcast", optimizer.Options{Mode: optimizer.ModeFetch, ForceStrategy: physical.StratBroadcast}},
		{"force av-range", optimizer.Options{Mode: optimizer.ModeFetch, ForceStrategy: physical.StratAVRange}},
		{"mutant ship mode", optimizer.Options{Mode: optimizer.ModeShip}},
	}
	for _, v := range variants {
		c := core.NewCluster(core.Config{Peers: n, Seed: 5, Latency: core.LatencyWAN, Optimizer: v.opt})
		ds := workload.Generate(workload.Options{Seed: 6, Persons: 60})
		c.BulkInsert(ds.Triples...)
		res, err := c.Query(query)
		if err != nil {
			panic(err)
		}
		t.Add(v.name, res.Messages, res.Elapsed, len(res.Bindings))
	}
	return t
}

// E5Similarity reproduces the q-gram index result of companion paper
// [6]: messages for edist selections via the distributed q-gram index
// vs. the naive broadcast scan, as data grows.
func E5Similarity(scale Scale) *trace.Series {
	t := trace.NewSeries("E5: similarity selection — q-gram index vs. broadcast",
		"conferences", "qgram msgs", "bcast msgs", "qgram results", "bcast results")
	// The crossover depends on the network size: broadcast costs ~2n
	// messages, the q-gram path ~|grams|·log2(n); the index wins from a
	// few dozen peers up. 256 peers is the experiment's headline point.
	n := scale.n(256)
	for _, confs := range []int{50, 200, scale.n(800)} {
		c := core.NewCluster(core.Config{Peers: n, Seed: 7, EnableQGram: true})
		var data []triple.Triple
		for i := 0; i < confs; i++ {
			s := workload.Series[i%len(workload.Series)]
			if i%3 == 0 {
				s = workload.Typo(c.Net().Rand(), s, 1)
			}
			data = append(data, triple.T(fmt.Sprintf("c%d", i), "series", s))
		}
		c.BulkInsert(data...)
		run := func(strat physical.AccessStrategy) (int, int) {
			q, err := vql.ParseQuery(`SELECT ?sr WHERE {(?c,'series',?sr) FILTER edist(?sr,'ICDE')<2}`)
			if err != nil {
				panic(err)
			}
			plan, err := physical.CompileQuery(q)
			if err != nil {
				panic(err)
			}
			opt := optimizer.New(c.Stats(), optimizer.Options{Mode: optimizer.ModeFetch, UseQGram: true, ForceStrategy: strat})
			opt.Optimize(plan)
			before := c.Net().Stats().MessagesSent
			eng := physical.NewEngine(c.Peers()[0], opt)
			bs, _ := eng.RunPlan(plan)
			return c.Net().Stats().MessagesSent - before, len(bs)
		}
		qm, qr := run(physical.StratQGram)
		bm, br := run(physical.StratBroadcast)
		t.Add(confs, qm, bm, qr, br)
	}
	return t
}

// E6LoadBalance reproduces P-Grid's skew handling claim ([2]): storage
// load distribution under Zipf-skewed values, peer-balanced trie vs.
// data-adaptive trie.
func E6LoadBalance(scale Scale) *trace.Series {
	t := trace.NewSeries("E6: storage load under Zipf skew (claim: balancing handles arbitrary skews)",
		"trie", "max load", "avg load", "max/avg", "gini")
	// The peer count stays fixed: a binary trie must spend one peer per
	// level of shared key prefix before it can split inside the hot
	// region, so the adaptive build needs depth headroom regardless of
	// how much data the (scaled) workload holds.
	n := 128
	data := workload.SkewedValues(8, scale.n(8000), 1.1)
	load := func(c *core.Cluster) (int, float64, float64) {
		loads := c.StorageLoad()
		maxL, sum := 0, 0
		for _, l := range loads {
			if l > maxL {
				maxL = l
			}
			sum += l
		}
		return maxL, float64(sum) / float64(len(loads)), gini(loads)
	}
	balanced := core.NewCluster(core.Config{Peers: n, Seed: 9})
	balanced.BulkInsert(data...)
	maxB, avgB, gB := load(balanced)
	t.Add("peer-balanced", maxB, avgB, float64(maxB)/avgB, gB)

	var samples []keys.Key
	for _, tr := range data {
		for _, kind := range triple.AllIndexKinds {
			samples = append(samples, triple.IndexKey(tr, kind))
		}
	}
	adaptive := core.NewCluster(core.Config{Peers: n, Seed: 9, AdaptiveSamples: samples})
	adaptive.BulkInsert(data...)
	maxA, avgA, gA := load(adaptive)
	t.Add("data-adaptive", maxA, avgA, float64(maxA)/avgA, gA)
	return t
}

func gini(loads []int) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), loads...)
	sort.Ints(sorted)
	var cum, total float64
	for _, l := range sorted {
		total += float64(l)
	}
	if total == 0 {
		return 0
	}
	var area float64
	for _, l := range sorted {
		cum += float64(l)
		area += cum
	}
	return 1 - 2*area/(float64(n)*total) + 1/float64(n)
}

// E7Skyline reproduces the ranking-operator claims: the paper's skyline
// query vs. data size, and top-N vs. full sort.
func E7Skyline(scale Scale) *trace.Series {
	t := trace.NewSeries("E7: skyline and top-N operators",
		"persons", "skyline size", "sky msgs", "sky latency", "top10 msgs", "orderby msgs")
	n := scale.n(64)
	for _, persons := range []int{100, scale.n(400)} {
		c := core.NewCluster(core.Config{Peers: n, Seed: 10, Latency: core.LatencyWAN})
		ds := workload.Generate(workload.Options{Seed: 11, Persons: persons})
		c.BulkInsert(ds.Triples...)
		sky, err := c.Query(`SELECT ?n,?age,?cnt WHERE {
			(?p,'name',?n) (?p,'age',?age) (?p,'num_of_pubs',?cnt)
		} ORDER BY SKYLINE OF ?age MIN, ?cnt MAX`)
		if err != nil {
			panic(err)
		}
		top, err := c.Query(`SELECT ?n,?cnt WHERE {(?p,'name',?n) (?p,'num_of_pubs',?cnt)} ORDER BY ?cnt DESC TOP 10`)
		if err != nil {
			panic(err)
		}
		full, err := c.Query(`SELECT ?n,?cnt WHERE {(?p,'name',?n) (?p,'num_of_pubs',?cnt)} ORDER BY ?cnt DESC`)
		if err != nil {
			panic(err)
		}
		t.Add(persons, len(sky.Bindings), sky.Messages, sky.Elapsed, top.Messages, full.Messages)
	}
	return t
}

// E8Updates reproduces the loosely consistent update claim ([4]):
// update visibility across replicas under loss, and repair of a
// returning replica by anti-entropy.
func E8Updates(scale Scale) *trace.Series {
	t := trace.NewSeries("E8: update propagation to replicas (claim: loose consistency, convergence)",
		"loss", "replicas fresh after write", "fresh after anti-entropy", "stale repaired")
	n := scale.n(16)
	for _, loss := range []float64{0, 0.1, 0.3} {
		cfg := pgrid.DefaultConfig()
		cfg.AntiEntropyEvery = int64(2 * time.Second)
		net := simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond),
			Seed: 12, LossRate: loss})
		peers := pgrid.BuildBalanced(net, n, 3, cfg)
		tr := triple.T("p1", "phone", "111")
		key := triple.AVKey("phone", triple.S("222"))
		peers[0].InsertTriple(tr, 1)
		net.Settle()
		peers[1].InsertTriple(triple.T("p1", "phone", "222"), 2)
		net.Settle()
		fresh := func() int {
			c := 0
			for _, p := range peers {
				for _, e := range p.Store().Lookup(triple.ByAV, key) {
					if e.Version == 2 {
						c++
					}
				}
			}
			return c
		}
		after := fresh()
		net.RunFor(30 * time.Second) // anti-entropy rounds
		repaired := fresh()
		t.Add(loss, after, repaired, repaired >= after)
	}
	return t
}

// E9RangeVsChord reproduces the §2 contrast: P-Grid answers range
// queries natively, a uniform-hashing DHT must visit every node.
func E9RangeVsChord(scale Scale) *trace.Series {
	t := trace.NewSeries("E9: range query messages — P-Grid vs. Chord baseline",
		"peers", "selectivity", "pgrid msgs", "chord msgs", "pgrid results", "chord results")
	for _, n := range []int{32, scale.n(256)} {
		for _, width := range []int{5, 20} {
			// P-Grid.
			netP := simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond), Seed: 13})
			peersP := pgrid.BuildBalanced(netP, n, 1, pgrid.DefaultConfig())
			for y := 1950; y < 2010; y++ {
				peersP[y%n].InsertTriple(triple.TN(fmt.Sprintf("p%d", y), "year", float64(y)), 1)
			}
			netP.Settle()
			lo, hi := triple.N(1990), triple.N(float64(1990+width))
			netP.ResetStats()
			resP := peersP[0].RangeQuerySync(triple.ByAV, triple.AVRange("year", lo, &hi))
			msgsP := netP.Stats().MessagesSent
			// Chord.
			netC := simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond), Seed: 13})
			nodes := chord.Build(netC, n)
			for y := 1950; y < 2010; y++ {
				nodes[y%n].InsertTriple(triple.TN(fmt.Sprintf("p%d", y), "year", float64(y)), 1)
			}
			netC.Run()
			netC.ResetStats()
			resC := nodes[0].RangeQuerySync(triple.ByAV, triple.AVRange("year", lo, &hi), n)
			msgsC := netC.Stats().MessagesSent
			t.Add(n, fmt.Sprintf("%d/60 years", width), msgsP, msgsC,
				len(resP.Entries), len(resC.Entries))
		}
	}
	return t
}

// E10Mappings reproduces the schema-mapping claim: queries retrieve
// data under foreign schemas once correspondence triples are applied —
// "even automatically by the system".
func E10Mappings(scale Scale) *trace.Series {
	t := trace.NewSeries("E10: recall across heterogeneous schemas via mapping triples",
		"mode", "results", "messages")
	n := scale.n(32)
	persons := scale.n(40)
	c := core.NewCluster(core.Config{Peers: n, Seed: 14})
	a, b, ms := workload.HeterogeneousPair(15, persons)
	c.BulkInsert(a.Triples...)
	c.BulkInsert(b.Triples...)
	q := `SELECT ?n WHERE {(?p,'dblp:name',?n)}`
	plain, err := c.Query(q)
	if err != nil {
		panic(err)
	}
	t.Add("without mappings", len(plain.Bindings), plain.Messages)
	for _, m := range ms {
		c.AddMapping(m)
	}
	mapped, err := c.QueryWithMappings(q)
	if err != nil {
		panic(err)
	}
	t.Add("with mappings (automatic)", len(mapped.Bindings), mapped.Messages)
	t.Add(fmt.Sprintf("ground truth: %d + %d persons", persons, persons), "", "")
	return t
}

// E11Merge reproduces the overlay-merge claim: two independent
// overlays interconnect in parallel; data of both becomes reachable
// from every peer.
func E11Merge(scale Scale) *trace.Series {
	t := trace.NewSeries("E11: merging two independent overlays (claim: parallel merge)",
		"sizes", "merge msgs", "reachability A-data", "reachability B-data")
	n := scale.n(16)
	net := simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond), Seed: 16})
	a := pgrid.BuildBalanced(net, n, 1, pgrid.DefaultConfig())
	b := pgrid.BuildBalanced(net, n, 1, pgrid.DefaultConfig())
	a[0].InsertTripleSync(triple.T("fromA", "name", "alice"), 1)
	b[0].InsertTripleSync(triple.T("fromB", "name", "bob"), 1)
	net.Settle()
	net.ResetStats()
	pgrid.RunMerge(net, a, b, 6)
	msgs := net.Stats().MessagesSent
	all := append(append([]*pgrid.Peer(nil), a...), b...)
	okA, okB := 0, 0
	for _, p := range all {
		if r := p.LookupSync(triple.ByAV, triple.AVKey("name", triple.S("alice"))); len(r.Entries) >= 1 {
			okA++
		}
		if r := p.LookupSync(triple.ByAV, triple.AVKey("name", triple.S("bob"))); len(r.Entries) >= 1 {
			okB++
		}
	}
	t.Add(fmt.Sprintf("%d+%d", n, n), msgs,
		fmt.Sprintf("%d/%d", okA, len(all)), fmt.Sprintf("%d/%d", okB, len(all)))
	return t
}

// E12PaperQuery runs the paper's complete §2 example end to end: the
// 8-pattern join with an edit-distance filter and a two-dimensional
// skyline.
func E12PaperQuery(scale Scale) *trace.Series {
	t := trace.NewSeries("E12: the paper's example query end-to-end",
		"peers", "results", "messages", "latency", "skyline valid")
	n := scale.n(64)
	c := core.NewCluster(core.Config{Peers: n, Seed: 17, EnableQGram: true, Latency: core.LatencyWAN})
	ds := workload.Generate(workload.Options{Seed: 18, Persons: scale.n(120), TypoRate: 0.2})
	c.BulkInsert(ds.Triples...)
	res, err := c.Query(`SELECT ?name,?age,?cnt
		WHERE {(?a,'name',?name) (?a,'age',?age)
		(?a,'num_of_pubs',?cnt)
		(?a,'has_published',?title) (?p,'title',?title)
		(?p,'published_in',?conf) (?c,'confname',?conf)
		(?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
		} ORDER BY SKYLINE OF ?age MIN, ?cnt MAX`)
	if err != nil {
		panic(err)
	}
	valid := true
	for i, x := range res.Bindings {
		for j, y := range res.Bindings {
			if i != j && x["age"].Num <= y["age"].Num && x["cnt"].Num >= y["cnt"].Num &&
				(x["age"].Num < y["age"].Num || x["cnt"].Num > y["cnt"].Num) {
				valid = false
			}
		}
	}
	t.Add(n, len(res.Bindings), res.Messages, res.Elapsed, valid)
	return t
}

// All runs every experiment at the given scale, in order.
func All(scale Scale) []*trace.Series {
	return []*trace.Series{
		E1TriplePlacement(),
		E2RoutingHops(scale),
		E3QueryLatency(scale),
		E4PlanVariants(scale),
		E5Similarity(scale),
		E6LoadBalance(scale),
		E7Skyline(scale),
		E8Updates(scale),
		E9RangeVsChord(scale),
		E10Mappings(scale),
		E11Merge(scale),
		E12PaperQuery(scale),
	}
}
