package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The experiments are validated at reduced scale: each must run, and
// its headline claim must hold in shape.

func TestE1EighteenEntries(t *testing.T) {
	tab := E1TriplePlacement()
	found := false
	for _, row := range tab.Rows() {
		if strings.HasPrefix(row[0], "TOTAL") {
			found = true
			if row[1] != "18" {
				t.Errorf("total entries = %s, want 18", row[1])
			}
		}
	}
	if !found {
		t.Fatal("no TOTAL row")
	}
}

func TestE2Logarithmic(t *testing.T) {
	tab := E2RoutingHops(0.25) // up to 256 peers
	for _, row := range tab.Rows() {
		avg, _ := strconv.ParseFloat(row[1], 64)
		log2, _ := strconv.ParseFloat(row[3], 64)
		if avg > log2+1 {
			t.Errorf("peers=%s: avg hops %.2f exceeds log2+1=%.2f", row[0], avg, log2+1)
		}
	}
}

func TestE3LatencySeconds(t *testing.T) {
	tab := E3QueryLatency(0.25) // up to 100 peers
	for _, row := range tab.Rows() {
		if !strings.Contains(row[1], "ms") && !strings.Contains(row[1], "s") {
			t.Errorf("latency cell unparsable: %q", row[1])
		}
	}
}

func TestE4VariantsDiffer(t *testing.T) {
	tab := E4PlanVariants(0.5)
	msgs := map[string]string{}
	for _, row := range tab.Rows() {
		msgs[row[0]] = row[1]
	}
	if msgs["optimizer on (auto)"] == msgs["force broadcast"] {
		t.Error("optimizer-on and broadcast variants should differ in messages")
	}
	// Results must agree across variants.
	var results []string
	for _, row := range tab.Rows() {
		results = append(results, row[3])
	}
	for _, r := range results[1:] {
		if r != results[0] {
			t.Fatalf("plan variants disagree on results: %v", results)
		}
	}
}

func TestE5QGramWins(t *testing.T) {
	tab := E5Similarity(0.25)
	for _, row := range tab.Rows() {
		qm, _ := strconv.Atoi(row[1])
		bm, _ := strconv.Atoi(row[2])
		if qm >= bm {
			t.Errorf("confs=%s: qgram %d msgs >= broadcast %d", row[0], qm, bm)
		}
		if row[3] != row[4] {
			t.Errorf("confs=%s: access paths disagree (%s vs %s)", row[0], row[3], row[4])
		}
	}
}

func TestE6AdaptiveBalances(t *testing.T) {
	tab := E6LoadBalance(0.25)
	rows := tab.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	maxBal, _ := strconv.Atoi(rows[0][1])
	maxAda, _ := strconv.Atoi(rows[1][1])
	if maxAda >= maxBal {
		t.Errorf("adaptive max load %d must beat balanced %d", maxAda, maxBal)
	}
}

func TestE7SkylineRuns(t *testing.T) {
	tab := E7Skyline(0.25)
	for _, row := range tab.Rows() {
		size, _ := strconv.Atoi(row[1])
		if size <= 0 {
			t.Errorf("empty skyline at persons=%s", row[0])
		}
		topM, _ := strconv.Atoi(row[4])
		fullM, _ := strconv.Atoi(row[5])
		if topM <= 0 || fullM <= 0 {
			t.Errorf("missing message counts: %v", row)
		}
	}
}

func TestE8AntiEntropyRepairs(t *testing.T) {
	tab := E8Updates(0.5)
	for _, row := range tab.Rows() {
		if row[3] != "true" {
			t.Errorf("loss=%s: anti-entropy did not repair (%v)", row[0], row)
		}
	}
	// At zero loss all three replicas are fresh immediately.
	if tab.Rows()[0][1] != "3" {
		t.Errorf("zero loss should reach all 3 replicas eagerly: %v", tab.Rows()[0])
	}
}

func TestE9PGridPrunes(t *testing.T) {
	tab := E9RangeVsChord(0.25)
	for _, row := range tab.Rows() {
		pg, _ := strconv.Atoi(row[2])
		ch, _ := strconv.Atoi(row[3])
		if pg >= ch {
			t.Errorf("peers=%s sel=%s: P-Grid %d msgs >= Chord %d", row[0], row[1], pg, ch)
		}
		if row[4] != row[5] {
			t.Errorf("result disagreement: %v", row)
		}
	}
}

func TestE10MappingsDoubleRecall(t *testing.T) {
	tab := E10Mappings(0.5)
	rows := tab.Rows()
	plain, _ := strconv.Atoi(rows[0][1])
	mapped, _ := strconv.Atoi(rows[1][1])
	if mapped != 2*plain {
		t.Errorf("mapped recall %d, want exactly double %d", mapped, plain)
	}
}

func TestE11MergeReachability(t *testing.T) {
	tab := E11Merge(0.5)
	row := tab.Rows()[0]
	for _, cell := range []string{row[2], row[3]} {
		parts := strings.Split(cell, "/")
		ok, _ := strconv.Atoi(parts[0])
		total, _ := strconv.Atoi(parts[1])
		if ok*10 < total*8 {
			t.Errorf("post-merge reachability too low: %s", cell)
		}
	}
}

func TestE12PaperQueryValid(t *testing.T) {
	tab := E12PaperQuery(0.25)
	row := tab.Rows()[0]
	if row[4] != "true" {
		t.Errorf("skyline invariant violated: %v", row)
	}
	n, _ := strconv.Atoi(row[1])
	if n <= 0 {
		t.Errorf("paper query returned no results: %v", row)
	}
}
