package triple

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"unistore/internal/keys"
)

func TestValueString(t *testing.T) {
	if S("ICDE").String() != "ICDE" {
		t.Error("string value rendering")
	}
	if N(2006).String() != "2006" {
		t.Errorf("numeric value rendering: %q", N(2006).String())
	}
	if N(2.5).String() != "2.5" {
		t.Errorf("numeric value rendering: %q", N(2.5).String())
	}
}

func TestValueCompare(t *testing.T) {
	ordered := []Value{N(-5), N(0), N(2005), N(2006), S(""), S("ICDE"), S("VLDB")}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

// Property: Lexical() encoding preserves Compare() order, which is what
// lets numeric ranges route through the order-preserving hash.
func TestLexicalOrderProperty(t *testing.T) {
	f := func(a, b float64) bool {
		la, lb := N(a).Lexical(), N(b).Lexical()
		switch {
		case a < b:
			return la < lb
		case a > b:
			return la > lb
		default:
			return la == lb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		la, lb := S(a).Lexical(), S(b).Lexical()
		return (a < b) == (la < lb) && (a == b) == (la == lb)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNumbersSortBeforeStringsInLexical(t *testing.T) {
	if !(N(1e308).Lexical() < S("").Lexical()) {
		t.Error("numeric encodings must sort before string encodings, matching Compare")
	}
}

func TestAsNumber(t *testing.T) {
	if v, ok := N(7).AsNumber(); !ok || v != 7 {
		t.Error("number AsNumber")
	}
	if v, ok := S("2006").AsNumber(); !ok || v != 2006 {
		t.Error("numeric string AsNumber")
	}
	if _, ok := S("ICDE").AsNumber(); ok {
		t.Error("non-numeric string must not parse")
	}
}

func TestTripleString(t *testing.T) {
	tr := T("a12", "confname", "ICDE 2006 - WS")
	if got := tr.String(); got != "(a12,'confname','ICDE 2006 - WS')" {
		t.Errorf("String() = %q", got)
	}
}

func TestNamespace(t *testing.T) {
	tr := T("a12", "dblp:title", "Similarity...")
	if tr.Namespace() != "dblp" || tr.LocalAttr() != "title" {
		t.Errorf("ns=%q local=%q", tr.Namespace(), tr.LocalAttr())
	}
	plain := T("a12", "title", "x")
	if plain.Namespace() != "" || plain.LocalAttr() != "title" {
		t.Error("attribute without namespace")
	}
}

func TestIndexKeysDistinctRegions(t *testing.T) {
	tr := T("a12", "year", "2006")
	ko := IndexKey(tr, ByOID)
	ka := IndexKey(tr, ByAV)
	kv := IndexKey(tr, ByVal)
	if ko.Equal(ka) || ka.Equal(kv) || ko.Equal(kv) {
		t.Error("the three index keys must land in distinct key-space regions")
	}
	// Region bytes order the index regions: OID(0x10) < AV(0x50) < v(0x90).
	if !(ko.Compare(ka) < 0 && ka.Compare(kv) < 0) {
		t.Error("expected OID < A#v < v region ordering")
	}
}

func TestIndexKindString(t *testing.T) {
	if ByOID.String() != "OID" || ByAV.String() != "A#v" || ByVal.String() != "v" {
		t.Error("IndexKind names must match the paper's figure")
	}
}

func TestAVKeyGroupsByAttribute(t *testing.T) {
	r := AVPrefixRange("confname")
	in := []Triple{
		T("a12", "confname", "ICDE 2006 - WS"),
		T("v34", "confname", "ICDE 2005"),
	}
	out := []Triple{
		T("a12", "title", "Similarity..."),
		TN("a12", "year", 2006),
	}
	for _, tr := range in {
		if !r.Contains(IndexKey(tr, ByAV)) {
			t.Errorf("A#v key of %v must fall in confname's range", tr)
		}
	}
	for _, tr := range out {
		if r.Contains(IndexKey(tr, ByAV)) {
			t.Errorf("A#v key of %v must not fall in confname's range", tr)
		}
	}
}

func TestAVRangeNumeric(t *testing.T) {
	lo := N(2005)
	r := AVRange("year", lo, nil)
	if !r.Contains(AVKey("year", N(2005))) || !r.Contains(AVKey("year", N(2006))) {
		t.Error("year >= 2005 must contain 2005 and 2006")
	}
	if r.Contains(AVKey("year", N(2004))) {
		t.Error("year >= 2005 must not contain 2004")
	}
	if r.Contains(AVKey("age", N(2006))) {
		t.Error("range must not include other attributes")
	}
	hi := N(2006)
	bounded := AVRange("year", lo, &hi)
	if bounded.Contains(AVKey("year", N(2006))) {
		t.Error("half-open range must exclude hi")
	}
	if !bounded.Contains(AVKey("year", N(2005))) {
		t.Error("half-open range must include lo")
	}
}

func TestValPrefixRange(t *testing.T) {
	r := ValPrefixRange("ICDE")
	if !r.Contains(ValKey(S("ICDE 2005"))) || !r.Contains(ValKey(S("ICDE"))) {
		t.Error("value prefix range must contain extensions")
	}
	if r.Contains(ValKey(S("VLDB"))) {
		t.Error("value prefix range must exclude other values")
	}
	if r.Contains(AVKey("confname", S("ICDE 2005"))) {
		t.Error("value prefix range must exclude the A#v region")
	}
}

func TestAVStringPrefixRange(t *testing.T) {
	r := AVStringPrefixRange("confname", "ICDE")
	if !r.Contains(AVKey("confname", S("ICDE 2006 - WS"))) {
		t.Error("prefix range must contain matching A#v entries")
	}
	if r.Contains(AVKey("confname", S("VLDB 2006"))) {
		t.Error("prefix range must exclude non-matching values")
	}
	if r.Contains(AVKey("series", S("ICDE"))) {
		t.Error("prefix range must exclude other attributes")
	}
}

func TestTupleTriplesDecomposition(t *testing.T) {
	// The paper's Fig. 2 example: one tuple with three attributes
	// becomes three triples (then ×3 index entries at insertion).
	tp := NewTuple("a12").
		Set("title", S("Similarity...")).
		Set("confname", S("ICDE 2006 - Workshops")).
		Set("year", N(2006))
	ts := tp.Triples()
	if len(ts) != 3 {
		t.Fatalf("3-attribute tuple must yield 3 triples, got %d", len(ts))
	}
	// Deterministic attribute order.
	if ts[0].Attr != "confname" || ts[1].Attr != "title" || ts[2].Attr != "year" {
		t.Errorf("triples not in sorted attribute order: %v", ts)
	}
	for _, tr := range ts {
		if tr.OID != "a12" {
			t.Errorf("OID must group the tuple: %v", tr)
		}
	}
}

func TestRecomposeInverse(t *testing.T) {
	t1 := NewTuple("a12").Set("title", S("Similarity...")).Set("year", N(2006))
	t2 := NewTuple("v34").Set("title", S("Progressive...")).Set("year", N(2005))
	var all []Triple
	all = append(all, t1.Triples()...)
	all = append(all, t2.Triples()...)
	back := Recompose(all)
	if len(back) != 2 {
		t.Fatalf("recomposed %d tuples, want 2", len(back))
	}
	if !reflect.DeepEqual(back[0].Attrs, t1.Attrs) || back[0].OID != "a12" {
		t.Errorf("tuple a12 not reconstructed: %+v", back[0])
	}
	if !reflect.DeepEqual(back[1].Attrs, t2.Attrs) || back[1].OID != "v34" {
		t.Errorf("tuple v34 not reconstructed: %+v", back[1])
	}
}

// Property: Recompose(Triples(t)) is the identity for any tuple —
// vertical storage is lossless (null values are just absent triples).
func TestDecomposeRecomposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	attrs := []string{"name", "age", "phone", "email", "office", "title", "year"}
	for iter := 0; iter < 500; iter++ {
		tp := NewTuple(GenerateOID("t"))
		n := 1 + rng.Intn(len(attrs))
		perm := rng.Perm(len(attrs))
		for i := 0; i < n; i++ {
			a := attrs[perm[i]]
			if rng.Intn(2) == 0 {
				tp.Set(a, N(float64(rng.Intn(1000))))
			} else {
				tp.Set(a, S(strings.Repeat("x", rng.Intn(5))+a))
			}
		}
		back := Recompose(tp.Triples())
		if len(back) != 1 || back[0].OID != tp.OID || !reflect.DeepEqual(back[0].Attrs, tp.Attrs) {
			t.Fatalf("round trip failed for %+v", tp)
		}
	}
}

func TestGenerateOIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		oid := GenerateOID("p1")
		if seen[oid] {
			t.Fatalf("duplicate OID %q", oid)
		}
		seen[oid] = true
	}
	if GenerateOID("") == "" || !strings.HasPrefix(GenerateOID(""), "oid-") {
		t.Error("empty prefix must default")
	}
}

func TestOIDKeyGroupsTuple(t *testing.T) {
	// All triples of one tuple share one OID key: the origin tuple can
	// be reproduced with a single lookup (paper: "efficient
	// reproduction of origin data").
	tp := NewTuple("v34").Set("title", S("Progressive...")).
		Set("confname", S("ICDE 2005")).Set("year", N(2005))
	var k keys.Key
	for i, tr := range tp.Triples() {
		ik := IndexKey(tr, ByOID)
		if i == 0 {
			k = ik
		} else if !ik.Equal(k) {
			t.Error("OID index keys of one tuple must coincide")
		}
	}
}

func TestWireSize(t *testing.T) {
	tr := T("a12", "title", "Similarity...")
	if tr.WireSize() <= 0 {
		t.Error("wire size must be positive")
	}
}

func TestRecomposeKeepsLastDuplicate(t *testing.T) {
	ts := []Triple{T("x", "a", "1"), T("x", "a", "2")}
	back := Recompose(ts)
	if len(back) != 1 || back[0].Attrs["a"].Str != "2" {
		t.Errorf("duplicate attribute handling: %+v", back)
	}
}

func TestIndexKeySortsValuesWithinAttribute(t *testing.T) {
	years := []float64{1999, 2004, 2005, 2006, 2010}
	var prev keys.Key
	for i, y := range years {
		k := AVKey("year", N(y))
		if i > 0 && prev.Compare(k) >= 0 {
			t.Errorf("A#v keys must preserve numeric order at year %v", y)
		}
		prev = k
	}
	confs := []string{"EDBT", "ICDE 2005", "ICDE 2006", "SIGMOD", "VLDB"}
	prev = keys.Key{}
	for i, c := range confs {
		k := AVKey("confname", S(c))
		if i > 0 && prev.Compare(k) >= 0 {
			t.Errorf("A#v keys must preserve string order at %q", c)
		}
		prev = k
	}
}

func TestTripleSortStable(t *testing.T) {
	ts := []Triple{TN("b", "y", 2), T("a", "x", "1"), TN("a", "y", 3)}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].OID != ts[j].OID {
			return ts[i].OID < ts[j].OID
		}
		return ts[i].Attr < ts[j].Attr
	})
	if ts[0].OID != "a" || ts[0].Attr != "x" {
		t.Errorf("sort order: %v", ts)
	}
}

func BenchmarkIndexKeys(b *testing.B) {
	tr := T("a12", "confname", "ICDE 2006 - Workshops")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		IndexKey(tr, ByOID)
		IndexKey(tr, ByAV)
		IndexKey(tr, ByVal)
	}
}

func BenchmarkDecompose(b *testing.B) {
	tp := NewTuple("a12").Set("title", S("Similarity...")).
		Set("confname", S("ICDE 2006 - Workshops")).Set("year", N(2006))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp.Triples()
	}
}
