// Package triple implements UniStore's data model: the universal
// relation stored vertically as (OID, attribute, value) triples,
// exactly the layout of RDF.
//
// A logical tuple (OID, v1, ..., vn) of relation schema R(A1, ..., An)
// is decomposed into n triples (OID, Ai, vi). Attribute names may carry
// a namespace prefix ("ns:attr") to distinguish relations and avoid
// conflicts; OIDs are system-generated and only serve to group the
// triples of one logical tuple. Null values are simply absent triples,
// which is what makes the universal relation model practical for
// heterogeneous data (§2 of the paper).
//
// Every triple is indexed under three keys (paper Fig. 2):
//
//	OID    — reproduce the origin tuple
//	A#v    — attribute-qualified lookups and ranges (Ai ≥ vi)
//	v      — queries on an arbitrary attribute by value
package triple

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"unistore/internal/keys"
)

// Value is a typed attribute value: a string or a number. The paper's
// example schema (Fig. 3) uses String, Number and Date; dates are
// represented as strings with order-preserving formatting.
type Value struct {
	// Kind discriminates the representation.
	Kind ValueKind
	Str  string
	Num  float64
}

// ValueKind enumerates value representations.
type ValueKind uint8

// Value kinds.
const (
	KindString ValueKind = iota
	KindNumber
)

// S constructs a string value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// N constructs a numeric value.
func N(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// String renders the value for display.
func (v Value) String() string {
	if v.Kind == KindNumber {
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return v.Str
}

// Lexical returns the order-preserving string encoding used to build
// index keys. Numbers get a type tag and a byte encoding whose
// lexicographic order matches numeric order, so ranges over numeric
// attributes route correctly.
func (v Value) Lexical() string {
	if v.Kind == KindNumber {
		return "n" + string(keys.EncodeFloatOrdered(v.Num))
	}
	return "s" + v.Str
}

// Compare orders values: numbers before strings, then natural order
// within a kind. This matches the order of Lexical() encodings.
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		if v.Kind == KindNumber {
			return -1
		}
		return 1
	}
	if v.Kind == KindNumber {
		switch {
		case v.Num < o.Num:
			return -1
		case v.Num > o.Num:
			return 1
		}
		return 0
	}
	return strings.Compare(v.Str, o.Str)
}

// Equal reports value equality.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// AsNumber reports the numeric interpretation of the value; ok is false
// for non-numeric strings.
func (v Value) AsNumber() (float64, bool) {
	if v.Kind == KindNumber {
		return v.Num, true
	}
	f, err := strconv.ParseFloat(v.Str, 64)
	return f, err == nil
}

// Triple is one (OID, attribute, value) fact.
type Triple struct {
	OID  string
	Attr string
	Val  Value
}

// T is shorthand for constructing a triple with a string value.
func T(oid, attr, val string) Triple { return Triple{OID: oid, Attr: attr, Val: S(val)} }

// TN is shorthand for constructing a triple with a numeric value.
func TN(oid, attr string, val float64) Triple { return Triple{OID: oid, Attr: attr, Val: N(val)} }

// String renders the triple in the paper's (oid,'attr','value') syntax.
func (t Triple) String() string {
	return fmt.Sprintf("(%s,'%s','%s')", t.OID, t.Attr, t.Val)
}

// WireSize estimates the serialized size for network accounting.
func (t Triple) WireSize() int {
	return len(t.OID) + len(t.Attr) + len(t.Val.Str) + 16
}

// Equal reports triple equality.
func (t Triple) Equal(o Triple) bool {
	return t.OID == o.OID && t.Attr == o.Attr && t.Val.Equal(o.Val)
}

// Namespace returns the namespace prefix of the attribute ("" if none):
// for "dblp:title" it returns "dblp".
func (t Triple) Namespace() string {
	if i := strings.IndexByte(t.Attr, ':'); i >= 0 {
		return t.Attr[:i]
	}
	return ""
}

// LocalAttr returns the attribute without its namespace prefix.
func (t Triple) LocalAttr() string {
	if i := strings.IndexByte(t.Attr, ':'); i >= 0 {
		return t.Attr[i+1:]
	}
	return t.Attr
}

// --- Index keys ---------------------------------------------------------

// IndexKind identifies one of the three index entries every triple gets.
type IndexKind uint8

// The three index kinds of Fig. 2.
const (
	ByOID IndexKind = iota // hash(OID)
	ByAV                   // hash(attr # value)
	ByVal                  // hash(value)
)

// String names the index kind as in the paper's figure.
func (k IndexKind) String() string {
	switch k {
	case ByOID:
		return "OID"
	case ByAV:
		return "A#v"
	case ByVal:
		return "v"
	}
	return fmt.Sprintf("IndexKind(%d)", uint8(k))
}

// Key-space regions. Each index kind lives in its own region of the key
// space, marked by the first key byte, so the three entry types never
// collide. Within the A#v region, a 1-byte hash of the attribute name
// follows the region byte: attributes spread uniformly over the key
// space (no attribute-name clustering), while the value encoding that
// follows stays order-preserving — exactly the property range queries
// need, since a range never spans attributes. OID keys hash the OID
// uniformly (only exact lookups touch them); v-index keys keep global
// value order to support cross-attribute prefix/substring search.
const (
	regionOID byte = 0x10
	regionAV  byte = 0x50
	regionVal byte = 0x90
	// RegionGram marks the distributed q-gram index (package qgram).
	RegionGram byte = 0xC0
)

// fnv64 is the FNV-1a hash used to spread OIDs and attribute names.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// composeKey builds a MaxDepth-bit key from a region byte and parts.
func composeKey(region byte, parts ...string) keys.Key {
	b := make([]byte, keys.MaxDepth/8)
	b[0] = region
	i := 1
	for _, p := range parts {
		i += copy(b[i:], p)
		if i >= len(b) {
			break
		}
	}
	return keys.FromBytes(b, keys.MaxDepth)
}

// attrTag returns a 1-byte uniform hash of an attribute name. One byte
// keeps intra-attribute key divergence shallow enough for the adaptive
// trie to split hot attributes at realistic peer counts; tag collisions
// merely co-locate two attributes' regions, which the executor's
// pattern matching filters out.
func attrTag(attr string) string {
	h := fnv64(attr)
	return string([]byte{byte(h ^ (h >> 8) ^ (h >> 16))})
}

// OIDKey returns the placement key for the triple's OID index entry.
func OIDKey(oid string) keys.Key {
	h := fnv64(oid)
	var b [8]byte
	for i := range b {
		b[i] = byte(h >> (56 - 8*i))
	}
	return composeKey(regionOID, string(b[:]), oid)
}

// AVKey returns the placement key for an attribute#value index entry.
func AVKey(attr string, v Value) keys.Key {
	return composeKey(regionAV, attrTag(attr), v.Lexical())
}

// ValKey returns the placement key for the value index entry.
func ValKey(v Value) keys.Key { return composeKey(regionVal, v.Lexical()) }

// IndexKey returns the placement key of the triple under the given
// index kind.
func IndexKey(t Triple, kind IndexKind) keys.Key {
	switch kind {
	case ByOID:
		return OIDKey(t.OID)
	case ByAV:
		return AVKey(t.Attr, t.Val)
	case ByVal:
		return ValKey(t.Val)
	}
	panic(fmt.Sprintf("triple: unknown index kind %d", kind))
}

// AllIndexKinds lists the three kinds in insertion order.
var AllIndexKinds = [3]IndexKind{ByOID, ByAV, ByVal}

// composePrefix builds a key prefix (not padded to MaxDepth) from a
// region byte and parts, for deriving prefix ranges.
func composePrefix(region byte, parts ...string) keys.Key {
	b := []byte{region}
	for _, p := range parts {
		b = append(b, p...)
	}
	if len(b) > keys.MaxDepth/8 {
		b = b[:keys.MaxDepth/8]
	}
	return keys.FromBytes(b, len(b)*8)
}

// AVPrefixRange returns the key range of all A#v entries for attribute
// attr (any value): the access path for pattern (?x, attr, ?v).
func AVPrefixRange(attr string) keys.Range {
	return keys.PrefixRange(composePrefix(regionAV, attrTag(attr)))
}

// AVRange returns the key range for attr with values in [lo, hi); an
// unbounded hi covers all values >= lo of lo's kind and beyond, clamped
// to the attribute's own region.
func AVRange(attr string, lo Value, hi *Value) keys.Range {
	r := keys.Range{Lo: AVKey(attr, lo)}
	if hi != nil {
		r.Hi = AVKey(attr, *hi)
		r.HiOpen = true
	} else {
		pr := AVPrefixRange(attr)
		r.Hi, r.HiOpen = pr.Hi, pr.HiOpen
	}
	return r
}

// ValPrefixRange returns the key range of all v-index entries whose
// string value starts with prefix — the substring-search entry point.
func ValPrefixRange(prefix string) keys.Range {
	return keys.PrefixRange(composePrefix(regionVal, "s"+prefix))
}

// AVStringPrefixRange returns the key range of A#v entries for attr
// whose string value starts with prefix.
func AVStringPrefixRange(attr, prefix string) keys.Range {
	return keys.PrefixRange(composePrefix(regionAV, attrTag(attr), "s"+prefix))
}

// --- Distributed q-gram index keys ----------------------------------------

// GramAttrPrefix marks gram-posting triples' attribute names; the
// posting for gram g of attribute a on value v is stored as the triple
// (v, GramAttrPrefix+a+"#"+g, v) at GramKey(a, g, v). Postings live in
// their own key-space region and never collide with instance data.
const GramAttrPrefix = "qgram:"

// GramTriple builds the posting triple for one gram of a value.
func GramTriple(attr, gram string, val string) Triple {
	return Triple{OID: val, Attr: GramAttrPrefix + attr + "#" + gram, Val: S(val)}
}

// GramKey places a gram posting: region byte, attribute tag, the gram,
// then the value (so one gram's postings are contiguous and ordered).
func GramKey(attr, gram, val string) keys.Key {
	return composeKey(RegionGram, attrTag(attr), gram, "#", val)
}

// GramRange is the key range holding every posting of one gram of one
// attribute — the access path of the distributed similarity operator.
func GramRange(attr, gram string) keys.Range {
	return keys.PrefixRange(composePrefix(RegionGram, attrTag(attr), gram, "#"))
}

// --- Tuples and the universal relation ----------------------------------

// Tuple is a logical tuple: an OID plus attribute→value pairs. It is
// the unit users insert; storage decomposes it into triples.
type Tuple struct {
	OID   string
	Attrs map[string]Value
}

// NewTuple creates an empty tuple with the given OID.
func NewTuple(oid string) *Tuple {
	return &Tuple{OID: oid, Attrs: make(map[string]Value)}
}

// Set assigns an attribute value and returns the tuple for chaining.
func (tp *Tuple) Set(attr string, v Value) *Tuple {
	tp.Attrs[attr] = v
	return tp
}

// Triples decomposes the tuple into its vertical representation, in
// deterministic (attribute-sorted) order.
func (tp *Tuple) Triples() []Triple {
	attrs := make([]string, 0, len(tp.Attrs))
	for a := range tp.Attrs {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	ts := make([]Triple, 0, len(attrs))
	for _, a := range attrs {
		ts = append(ts, Triple{OID: tp.OID, Attr: a, Val: tp.Attrs[a]})
	}
	return ts
}

// Recompose groups triples by OID back into logical tuples — the inverse
// of Triples. Triples with duplicate attributes keep the last value.
func Recompose(ts []Triple) []*Tuple {
	byOID := make(map[string]*Tuple)
	var order []string
	for _, t := range ts {
		tp, ok := byOID[t.OID]
		if !ok {
			tp = NewTuple(t.OID)
			byOID[t.OID] = tp
			order = append(order, t.OID)
		}
		tp.Attrs[t.Attr] = t.Val
	}
	out := make([]*Tuple, 0, len(order))
	for _, oid := range order {
		out = append(out, byOID[oid])
	}
	return out
}

// oidCounter backs GenerateOID.
var oidCounter atomic.Uint64

// GenerateOID returns a fresh system-generated OID with the given
// prefix (e.g., a peer name), mirroring the paper's system-generated
// URIs that group the triples of a logical tuple.
func GenerateOID(prefix string) string {
	n := oidCounter.Add(1)
	if prefix == "" {
		prefix = "oid"
	}
	return fmt.Sprintf("%s-%06d", prefix, n)
}
