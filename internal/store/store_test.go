package store

import (
	"math/rand"
	"testing"

	"unistore/internal/keys"
	"unistore/internal/triple"
)

func fig2Tuples() []*triple.Tuple {
	// The two example tuples of paper Fig. 2.
	t1 := triple.NewTuple("a12").
		Set("title", triple.S("Similarity...")).
		Set("confname", triple.S("ICDE 2006 - Workshops")).
		Set("year", triple.N(2006))
	t2 := triple.NewTuple("v34").
		Set("title", triple.S("Progressive...")).
		Set("confname", triple.S("ICDE 2005")).
		Set("year", triple.N(2005))
	return []*triple.Tuple{t1, t2}
}

func populate(s *Store) int {
	n := 0
	for _, tp := range fig2Tuples() {
		for _, tr := range tp.Triples() {
			s.PutAll(tr, 1)
			n += 3
		}
	}
	return n
}

func TestFig2EighteenEntries(t *testing.T) {
	s := New()
	n := populate(s)
	if n != 18 {
		t.Fatalf("2 tuples × 3 attrs × 3 indexes = 18 entries, prepared %d", n)
	}
	if s.Len() != 18 {
		t.Fatalf("store holds %d live entries, want 18", s.Len())
	}
	for _, kind := range triple.AllIndexKinds {
		if got := s.LenKind(kind); got != 6 {
			t.Errorf("index %v holds %d entries, want 6", kind, got)
		}
	}
}

func TestLookupByOID(t *testing.T) {
	s := New()
	populate(s)
	got := s.Lookup(triple.ByOID, triple.OIDKey("a12"))
	if len(got) != 3 {
		t.Fatalf("OID lookup returned %d entries, want 3", len(got))
	}
	tuples := triple.Recompose(entriesToTriples(got))
	if len(tuples) != 1 || tuples[0].OID != "a12" {
		t.Fatal("origin tuple not reproducible from OID index")
	}
	if v, ok := tuples[0].Attrs["year"]; !ok || v.Num != 2006 {
		t.Errorf("reconstructed year = %v", v)
	}
}

func entriesToTriples(es []Entry) []triple.Triple {
	ts := make([]triple.Triple, len(es))
	for i, e := range es {
		ts[i] = e.Triple
	}
	return ts
}

func TestLookupByAV(t *testing.T) {
	s := New()
	populate(s)
	got := s.Lookup(triple.ByAV, triple.AVKey("confname", triple.S("ICDE 2005")))
	if len(got) != 1 || got[0].Triple.OID != "v34" {
		t.Fatalf("A#v lookup = %v", got)
	}
}

func TestLookupByValue(t *testing.T) {
	s := New()
	populate(s)
	// Value lookup finds the triple regardless of attribute.
	got := s.Lookup(triple.ByVal, triple.ValKey(triple.N(2005)))
	if len(got) != 1 || got[0].Triple.Attr != "year" {
		t.Fatalf("v lookup = %v", got)
	}
}

func TestRangeScanYears(t *testing.T) {
	s := New()
	populate(s)
	lo := triple.N(2005)
	r := triple.AVRange("year", lo, nil) // year >= 2005
	es := s.CollectRange(triple.ByAV, r)
	if len(es) != 2 {
		t.Fatalf("year >= 2005 returned %d, want 2", len(es))
	}
	hi := triple.N(2006)
	r = triple.AVRange("year", lo, &hi) // 2005 <= year < 2006
	es = s.CollectRange(triple.ByAV, r)
	if len(es) != 1 || es[0].Triple.OID != "v34" {
		t.Fatalf("bounded year range = %v", es)
	}
}

func TestScanOrdered(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		s.PutAll(triple.TN(triple.GenerateOID("o"), "year", float64(1960+i)), 1)
	}
	var prev keys.Key
	first := true
	s.Scan(triple.ByAV, triple.AVPrefixRange("year"), func(e Entry) bool {
		if !first && prev.Compare(e.Key) > 0 {
			t.Fatal("scan not in key order")
		}
		prev, first = e.Key, false
		return true
	})
}

func TestUpdateVersioning(t *testing.T) {
	s := New()
	tr := triple.T("p1", "phone", "111")
	s.PutAll(tr, 1)
	// Newer version wins.
	if !s.PutAll(triple.T("p1", "phone", "222"), 2) {
		t.Fatal("newer version must win")
	}
	// Stale write ignored.
	if s.PutAll(triple.T("p1", "phone", "000"), 1) {
		t.Fatal("stale version must lose")
	}
	got := s.Lookup(triple.ByOID, triple.OIDKey("p1"))
	if len(got) != 1 || got[0].Triple.Val.Str != "222" {
		t.Fatalf("after update: %v", got)
	}
	// The old A#v entry must be gone: an update relocates the entry.
	if es := s.Lookup(triple.ByAV, triple.AVKey("phone", triple.S("111"))); len(es) != 0 {
		t.Errorf("old A#v entry survived update: %v", es)
	}
	if es := s.Lookup(triple.ByAV, triple.AVKey("phone", triple.S("222"))); len(es) != 1 {
		t.Errorf("new A#v entry missing: %v", es)
	}
}

func TestConcurrentVersionTieBreak(t *testing.T) {
	// Two replicas apply the same two concurrent writes in opposite
	// orders; both must converge to the same value.
	a, b := New(), New()
	w1 := triple.T("p1", "office", "Z123")
	w2 := triple.T("p1", "office", "A456")
	a.PutAll(w1, 5)
	a.PutAll(w2, 5)
	b.PutAll(w2, 5)
	b.PutAll(w1, 5)
	va := a.Lookup(triple.ByOID, triple.OIDKey("p1"))
	vb := b.Lookup(triple.ByOID, triple.OIDKey("p1"))
	if len(va) != 1 || len(vb) != 1 || !va[0].Triple.Equal(vb[0].Triple) {
		t.Fatalf("replicas diverged: %v vs %v", va, vb)
	}
}

func TestTombstone(t *testing.T) {
	s := New()
	s.PutAll(triple.T("p1", "email", "x@y"), 1)
	for _, kind := range triple.AllIndexKinds {
		if !s.DeleteEntry(kind, "p1", "email", 2) {
			t.Fatal("tombstone must win over older write")
		}
	}
	if s.Len() != 0 {
		t.Errorf("live entries after delete: %d", s.Len())
	}
	// A stale re-insert must not resurrect the fact.
	if s.PutAll(triple.T("p1", "email", "x@y"), 1) {
		t.Error("stale write must not beat tombstone")
	}
	if s.Len() != 0 {
		t.Error("fact resurrected by stale write")
	}
	// Tombstones still ship via Facts for anti-entropy.
	found := false
	for _, e := range s.Facts() {
		if e.Deleted && e.Triple.OID == "p1" {
			found = true
		}
	}
	if !found {
		t.Error("tombstone missing from Facts()")
	}
}

func TestApplyAntiEntropyConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := New(), New()
	// Independent writes on both replicas.
	for i := 0; i < 200; i++ {
		oid := triple.GenerateOID("x")
		tr := triple.TN(oid, "age", float64(rng.Intn(90)))
		if rng.Intn(2) == 0 {
			a.PutAll(tr, uint64(rng.Intn(5)+1))
		} else {
			b.PutAll(tr, uint64(rng.Intn(5)+1))
		}
	}
	// Exchange full state both ways.
	for _, e := range a.Facts() {
		b.Apply(e)
	}
	for _, e := range b.Facts() {
		a.Apply(e)
	}
	fa, fb := a.Facts(), b.Facts()
	if len(fa) != len(fb) {
		t.Fatalf("fact counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if !fa[i].Triple.Equal(fb[i].Triple) || fa[i].Version != fb[i].Version {
			t.Fatalf("divergence at %d: %+v vs %+v", i, fa[i], fb[i])
		}
	}
}

func TestDropRange(t *testing.T) {
	s := New()
	populate(s)
	r := triple.AVPrefixRange("confname")
	dropped := s.DropRange(triple.ByAV, r)
	if len(dropped) != 2 {
		t.Fatalf("dropped %d confname entries, want 2", len(dropped))
	}
	if es := s.CollectRange(triple.ByAV, r); len(es) != 0 {
		t.Error("entries survived DropRange")
	}
	// Other indexes are untouched: a peer owns the kinds independently.
	if s.LenKind(triple.ByOID) != 6 {
		t.Error("DropRange must only affect the targeted index kind")
	}
}

func TestRetainRange(t *testing.T) {
	s := New()
	populate(s)
	r := triple.AVPrefixRange("year")
	dropped := s.RetainRange(triple.ByAV, r)
	if len(dropped) != 4 { // title ×2 + confname ×2
		t.Fatalf("RetainRange dropped %d, want 4", len(dropped))
	}
	if got := s.LenKind(triple.ByAV); got != 2 {
		t.Errorf("retained %d entries, want 2", got)
	}
}

func TestEntriesRoundTripAcrossStores(t *testing.T) {
	// A split ships entries to a new peer; the receiver must reproduce
	// lookups exactly.
	s := New()
	populate(s)
	dst := New()
	for _, e := range s.Entries(triple.ByAV) {
		dst.Apply(e)
	}
	got := dst.Lookup(triple.ByAV, triple.AVKey("year", triple.N(2006)))
	if len(got) != 1 || got[0].Triple.OID != "a12" {
		t.Fatalf("migrated lookup = %v", got)
	}
}

func TestVersionQuery(t *testing.T) {
	s := New()
	s.PutAll(triple.T("p", "a", "v"), 7)
	v, del, ok := s.Version(triple.ByOID, "p", "a")
	if !ok || del || v != 7 {
		t.Errorf("Version = (%d,%v,%v)", v, del, ok)
	}
	if _, _, ok := s.Version(triple.ByOID, "p", "zzz"); ok {
		t.Error("absent fact must report !ok")
	}
}

func TestStringSummary(t *testing.T) {
	s := New()
	populate(s)
	if s.String() == "" {
		t.Error("String must render")
	}
}

func BenchmarkStorePutAll(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.PutAll(triple.TN(triple.GenerateOID("b"), "year", float64(i%100+1950)), 1)
	}
}

func BenchmarkStoreRangeScan(b *testing.B) {
	s := New()
	for i := 0; i < 20000; i++ {
		s.PutAll(triple.TN(triple.GenerateOID("b"), "age", float64(i%90)), 1)
	}
	lo, hi := triple.N(30), triple.N(40)
	r := triple.AVRange("age", lo, &hi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Scan(triple.ByAV, r, func(Entry) bool { n++; return true })
	}
}
