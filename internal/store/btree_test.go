package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestBTreeSetGet(t *testing.T) {
	b := newBTree()
	if b.Get("missing") != nil {
		t.Error("empty tree Get must be nil")
	}
	b.Set("k1", 1)
	b.Set("k2", 2)
	b.Set("k1", 10) // overwrite
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
	if b.Get("k1").(int) != 10 || b.Get("k2").(int) != 2 {
		t.Error("Get returned wrong values")
	}
}

func TestBTreeManyKeysSorted(t *testing.T) {
	b := newBTree()
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		b.Set(fmt.Sprintf("%08d", i), i)
	}
	if b.Len() != n {
		t.Fatalf("Len = %d, want %d", b.Len(), n)
	}
	prev := ""
	count := 0
	b.Ascend(func(k string, v any) bool {
		if k <= prev && prev != "" {
			t.Fatalf("keys out of order: %q after %q", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Errorf("Ascend visited %d, want %d", count, n)
	}
}

func TestBTreeAscendRange(t *testing.T) {
	b := newBTree()
	for i := 0; i < 100; i++ {
		b.Set(fmt.Sprintf("%03d", i), i)
	}
	var got []int
	b.AscendRange("010", "020", func(_ string, v any) bool {
		got = append(got, v.(int))
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Errorf("range [010,020) = %v", got)
	}
	// Unbounded hi.
	got = got[:0]
	b.AscendRange("095", "", func(_ string, v any) bool {
		got = append(got, v.(int))
		return true
	})
	if len(got) != 5 || got[0] != 95 {
		t.Errorf("range [095,∞) = %v", got)
	}
	// Early stop.
	n := 0
	b.AscendRange("000", "", func(string, any) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestBTreeDelete(t *testing.T) {
	b := newBTree()
	const n = 2000
	for i := 0; i < n; i++ {
		b.Set(fmt.Sprintf("%05d", i), i)
	}
	rng := rand.New(rand.NewSource(2))
	alive := make(map[string]bool)
	for i := 0; i < n; i++ {
		alive[fmt.Sprintf("%05d", i)] = true
	}
	// Delete a random two thirds.
	for k := range alive {
		if rng.Float64() < 0.66 {
			if !b.Delete(k) {
				t.Fatalf("Delete(%q) reported absent", k)
			}
			delete(alive, k)
		}
	}
	if b.Delete("no-such-key") {
		t.Error("deleting a missing key must report false")
	}
	if b.Len() != len(alive) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(alive))
	}
	for k := range alive {
		if b.Get(k) == nil {
			t.Fatalf("surviving key %q lost", k)
		}
	}
	// Order still holds.
	prev := ""
	b.Ascend(func(k string, _ any) bool {
		if prev != "" && k <= prev {
			t.Fatalf("order violated after deletes")
		}
		prev = k
		return true
	})
}

func TestBTreeDeleteAll(t *testing.T) {
	b := newBTree()
	for i := 0; i < 500; i++ {
		b.Set(fmt.Sprintf("%04d", i), i)
	}
	for i := 0; i < 500; i++ {
		if !b.Delete(fmt.Sprintf("%04d", i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if b.Len() != 0 {
		t.Errorf("Len = %d after deleting all", b.Len())
	}
	count := 0
	b.Ascend(func(string, any) bool { count++; return true })
	if count != 0 {
		t.Errorf("empty tree iterated %d items", count)
	}
}

func TestBTreeUpdate(t *testing.T) {
	b := newBTree()
	b.Update("k", func(old any) any {
		if old != nil {
			t.Error("first update must see nil")
		}
		return []int{1}
	})
	b.Update("k", func(old any) any { return append(old.([]int), 2) })
	if got := b.Get("k").([]int); len(got) != 2 || got[1] != 2 {
		t.Errorf("update chain produced %v", got)
	}
}

// Property-style: random interleaving of set/delete against a reference
// map, verifying contents and order afterwards.
func TestBTreeRandomizedVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := newBTree()
	ref := make(map[string]int)
	for op := 0; op < 20000; op++ {
		k := fmt.Sprintf("%04d", rng.Intn(3000))
		switch rng.Intn(3) {
		case 0, 1:
			b.Set(k, op)
			ref[k] = op
		case 2:
			got := b.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("Delete(%q) = %v, reference says %v", k, got, want)
			}
			delete(ref, k)
		}
	}
	if b.Len() != len(ref) {
		t.Fatalf("Len = %d, reference %d", b.Len(), len(ref))
	}
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	b.Ascend(func(k string, v any) bool {
		if k != keys[i] || v.(int) != ref[k] {
			t.Fatalf("position %d: got (%q,%v), want (%q,%v)", i, k, v, keys[i], ref[keys[i]])
		}
		i++
		return true
	})
}

func BenchmarkBTreeInsert(b *testing.B) {
	t := newBTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Set(fmt.Sprintf("%09d", i%100000), i)
	}
}

func BenchmarkBTreeRangeScan(b *testing.B) {
	t := newBTree()
	for i := 0; i < 100000; i++ {
		t.Set(fmt.Sprintf("%09d", i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		t.AscendRange("000050000", "000051000", func(string, any) bool { n++; return true })
		if n != 1000 {
			b.Fatalf("scan saw %d", n)
		}
	}
}
