package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"unistore/internal/keys"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// The log is a sequence of length-prefixed, CRC-checksummed records:
//
//	u32 LE payload length | u32 LE CRC-32C(payload) | payload
//
// and a payload starts with a one-byte op:
//
//	opEntry    one store mutation (PutEntry/DeleteEntry/Apply — the
//	           full versioned Entry, tombstone flag included)
//	opDrop     a range purge (DropRange, or RetainRange when the
//	           retain flag is set) — membership shedding is logged as
//	           the one logical operation, not per doomed entry
//	opSnapHead snapshot header: the entry count that must follow
//	opSnapFoot snapshot footer: the same count again — a snapshot
//	           missing its footer (or short of its count) is invalid
//
// Replaying a log is applying its records in order. A record that does
// not parse — short frame, oversized length, CRC mismatch, malformed
// payload — ends the valid prefix; everything before it replays,
// everything after it is the torn tail.

const (
	opEntry    = 1
	opDrop     = 2
	opSnapHead = 3
	opSnapFoot = 4
)

// maxRecord bounds one record's payload: far above any entry, far
// below anything a corrupted length prefix could use to allocate.
const maxRecord = 1 << 26

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks the end of a log's valid prefix. It is internal:
// recovery converts it into a truncation, never an error.
var errTorn = errors.New("wal: torn record")

// appendRecord frames payload onto buf.
func appendRecord(buf, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// nextRecord reads one record at data[off:], returning the payload and
// the next offset. errTorn means the bytes at off do not form a whole
// valid record — the valid prefix ends at off.
func nextRecord(data []byte, off int) ([]byte, int, error) {
	rem := len(data) - off
	if rem < 8 {
		return nil, off, errTorn
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if n > maxRecord || rem < 8+n {
		return nil, off, errTorn
	}
	payload := data[off+8 : off+8+n]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, off, errTorn
	}
	return payload, off + 8 + n, nil
}

// --- payload encoding -----------------------------------------------------

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendKey(buf []byte, k keys.Key) []byte {
	kb, _ := k.MarshalBinary() // cannot fail
	buf = appendUvarint(buf, uint64(len(kb)))
	return append(buf, kb...)
}

// encodeEntry serializes one store mutation.
func encodeEntry(buf []byte, e store.Entry) []byte {
	buf = append(buf, opEntry, byte(e.Kind))
	if e.Deleted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, e.Version)
	buf = appendKey(buf, e.Key)
	buf = appendString(buf, e.Triple.OID)
	buf = appendString(buf, e.Triple.Attr)
	buf = append(buf, byte(e.Triple.Val.Kind))
	buf = appendString(buf, e.Triple.Val.Str)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Triple.Val.Num))
	return buf
}

// encodeDrop serializes one range purge. retain inverts the predicate
// (RetainRange keeps the range and drops the rest).
func encodeDrop(buf []byte, kind triple.IndexKind, r keys.Range, retain bool) []byte {
	buf = append(buf, opDrop, byte(kind))
	if retain {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendKey(buf, r.Lo)
	buf = appendKey(buf, r.Hi)
	if r.HiOpen {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func encodeCount(op byte, count uint64) []byte {
	buf := make([]byte, 0, 9)
	buf = append(buf, op)
	return binary.LittleEndian.AppendUint64(buf, count)
}

// --- payload decoding (untrusted bytes: errors, never panics) -------------

type decoder struct {
	data []byte
	off  int
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.data) {
		return 0, fmt.Errorf("wal: record truncated at byte %d", d.off)
	}
	b := d.data[d.off]
	d.off++
	return b, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.data) {
		return 0, fmt.Errorf("wal: record truncated at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: bad varint at byte %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.data)-d.off) {
		return nil, fmt.Errorf("wal: %d-byte field overruns record", n)
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

func (d *decoder) string() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

func (d *decoder) key() (keys.Key, error) {
	b, err := d.bytes()
	if err != nil {
		return keys.Key{}, err
	}
	var k keys.Key
	if err := k.UnmarshalBinary(b); err != nil {
		return keys.Key{}, err
	}
	return k, nil
}

// decodeEntry parses an opEntry payload (op byte already consumed by
// the caller's dispatch — d sits just past it).
func decodeEntry(d *decoder) (store.Entry, error) {
	var e store.Entry
	kind, err := d.byte()
	if err != nil {
		return e, err
	}
	if int(kind) >= len(triple.AllIndexKinds) {
		return e, fmt.Errorf("wal: bad index kind %d", kind)
	}
	e.Kind = triple.IndexKind(kind)
	del, err := d.byte()
	if err != nil {
		return e, err
	}
	e.Deleted = del != 0
	if e.Version, err = d.u64(); err != nil {
		return e, err
	}
	if e.Key, err = d.key(); err != nil {
		return e, err
	}
	if e.Triple.OID, err = d.string(); err != nil {
		return e, err
	}
	if e.Triple.Attr, err = d.string(); err != nil {
		return e, err
	}
	vk, err := d.byte()
	if err != nil {
		return e, err
	}
	e.Triple.Val.Kind = triple.ValueKind(vk)
	if e.Triple.Val.Str, err = d.string(); err != nil {
		return e, err
	}
	bits, err := d.u64()
	if err != nil {
		return e, err
	}
	e.Triple.Val.Num = math.Float64frombits(bits)
	return e, nil
}

type dropRec struct {
	kind   triple.IndexKind
	r      keys.Range
	retain bool
}

func decodeDrop(d *decoder) (dropRec, error) {
	var dr dropRec
	kind, err := d.byte()
	if err != nil {
		return dr, err
	}
	if int(kind) >= len(triple.AllIndexKinds) {
		return dr, fmt.Errorf("wal: bad index kind %d", kind)
	}
	dr.kind = triple.IndexKind(kind)
	ret, err := d.byte()
	if err != nil {
		return dr, err
	}
	dr.retain = ret != 0
	if dr.r.Lo, err = d.key(); err != nil {
		return dr, err
	}
	if dr.r.Hi, err = d.key(); err != nil {
		return dr, err
	}
	open, err := d.byte()
	if err != nil {
		return dr, err
	}
	dr.r.HiOpen = open != 0
	return dr, nil
}
