// Package wal puts a persistence boundary behind store.Store: an
// append-only, CRC-checksummed, length-prefixed write-ahead log with
// snapshot + log-truncation compaction. Every mutation the store
// accepts is logged BEFORE it is applied in memory, so a process that
// dies at any instant recovers to a state containing every
// acknowledged write: recovery loads the latest valid snapshot,
// replays the log over it, and truncates a torn tail (a partial final
// record is the expected shape of a crash, never an error for the
// records before it, never a panic).
//
// The disk surface is the small FS/File interface below rather than
// the os package directly, so the crash-recovery test matrix can
// inject real faults — short writes, sync failures, rename failures,
// a crash that discards unsynced bytes — without touching a disk.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the filesystem slice the log needs. Paths are forward-slash
// relative or absolute strings; implementations may interpret them as
// they wish as long as they are consistent.
type FS interface {
	MkdirAll(dir string) error
	// Create truncates/creates a file for writing.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldName, newName string) error
	Remove(name string) error
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Truncate cuts name to size bytes — recovery's torn-tail cut.
	Truncate(name string, size int64) error
	// SyncDir makes directory-level operations (create, rename, remove)
	// durable.
	SyncDir(dir string) error
}

// File is an open log or snapshot file.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// --- OS implementation ----------------------------------------------------

// OSFS is the real-disk FS.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (OSFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OSFS) Rename(o, n string) error             { return os.Rename(o, n) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// --- In-memory crash-and-fault implementation -----------------------------

// MemFS is an in-memory FS with an explicit durability model for crash
// tests: every file has LIVE content (what the process sees) and
// DURABLE content (what survives a crash). Writes extend only the live
// content; File.Sync promotes a file's live content to durable;
// directory-level operations (create, rename, remove) become durable
// at the next SyncDir. Crash() resets the live view to the durable
// one — exactly what kill -9 plus a lost page cache does — with an
// optional per-file count of unsynced bytes that happened to reach the
// disk anyway (the torn-tail case).
//
// Faults are injected by operation name: "write", "sync", "create",
// "append", "rename", "remove", "truncate", "syncdir". An injected
// fault fires once per FailAfter countdown and then clears.
type MemFS struct {
	mu      sync.Mutex
	live    map[string][]byte
	durable map[string][]byte
	dirs    map[string]bool
	// pendDir tracks files whose existence/name is not yet durable:
	// created, renamed or removed since the last SyncDir. A crash
	// reverts these to their durable state.
	pendCreate map[string]bool
	pendRemove map[string][]byte // removed name -> its durable content

	faults map[string]*fault

	// shortWrite, when set for a path, makes the next write to it write
	// only that many bytes and fail — the short-write injection.
	shortWrite map[string]int
}

type fault struct {
	after int // fire when the countdown reaches zero
	err   error
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		live:       make(map[string][]byte),
		durable:    make(map[string][]byte),
		dirs:       make(map[string]bool),
		pendCreate: make(map[string]bool),
		pendRemove: make(map[string][]byte),
		faults:     make(map[string]*fault),
		shortWrite: make(map[string]int),
	}
}

// FailOp arms a fault: the (after+1)-th matching operation fails with
// err and the fault clears. op is one of the operation names above;
// pathSuffix selects the file ("" matches any).
func (m *MemFS) FailOp(op, pathSuffix string, after int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults[op+"|"+pathSuffix] = &fault{after: after, err: err}
}

// ShortWrite makes the next write to a path with the given suffix
// write only n bytes before failing.
func (m *MemFS) ShortWrite(pathSuffix string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shortWrite[pathSuffix] = n
}

// checkFault consumes one matching armed fault, if any. Callers hold mu.
func (m *MemFS) checkFault(op, path string) error {
	for key, f := range m.faults {
		o, suffix, _ := strings.Cut(key, "|")
		if o != op || !strings.HasSuffix(path, suffix) {
			continue
		}
		if f.after > 0 {
			f.after--
			continue
		}
		delete(m.faults, key)
		return f.err
	}
	return nil
}

// Crash discards everything that was not durable: unsynced file bytes,
// unsynced creates, renames and removes. extra optionally names files
// (by suffix) whose first n unsynced bytes survive anyway — the torn
// record a crash mid-write leaves behind.
func (m *MemFS) Crash(extra map[string]int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keep := func(path string) int {
		for suffix, n := range extra {
			if strings.HasSuffix(path, suffix) {
				return n
			}
		}
		return 0
	}
	live := make(map[string][]byte, len(m.durable))
	for name, data := range m.durable {
		if m.pendCreate[name] {
			continue // synced content, but the NAME never became durable
		}
		live[name] = append([]byte(nil), data...)
	}
	for name, data := range m.live {
		if m.pendCreate[name] {
			// Created or renamed here since the last SyncDir: the file
			// vanishes, except bytes the crash happened to leave behind.
			if n := keep(name); n > 0 {
				if n > len(data) {
					n = len(data)
				}
				live[name] = append([]byte(nil), data[:n]...)
			}
			continue
		}
		if _, durable := m.durable[name]; !durable {
			if n := keep(name); n > 0 {
				if n > len(data) {
					n = len(data)
				}
				live[name] = append([]byte(nil), data[:n]...)
			}
			continue
		}
		if n := keep(name); n > 0 {
			d := len(m.durable[name])
			if d > len(data) {
				d = len(data)
			}
			tail := data[d:]
			if n > len(tail) {
				n = len(tail)
			}
			live[name] = append(live[name], tail[:n]...)
		}
	}
	// Un-synced removes come back, in both views.
	for name, data := range m.pendRemove {
		live[name] = append([]byte(nil), data...)
		m.durable[name] = append([]byte(nil), data...)
	}
	// Synced-but-unlinked inodes are garbage after the crash.
	for name := range m.pendCreate {
		delete(m.durable, name)
	}
	m.live = live
	m.pendCreate = make(map[string]bool)
	m.pendRemove = make(map[string][]byte)
}

// DurableLen returns the durable byte count of the file with the given
// suffix (testing hook).
func (m *MemFS) DurableLen(pathSuffix string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, data := range m.durable {
		if strings.HasSuffix(name, pathSuffix) {
			return len(data)
		}
	}
	return 0
}

// Corrupt XORs the live and durable byte at off of the file with the
// given suffix (bit-flip injection).
func (m *MemFS) Corrupt(pathSuffix string, off int, mask byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name := range m.live {
		if strings.HasSuffix(name, pathSuffix) && off < len(m.live[name]) {
			m.live[name][off] ^= mask
			if d, ok := m.durable[name]; ok && off < len(d) {
				d[off] ^= mask
			}
		}
	}
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkFault("mkdir", dir); err != nil {
		return err
	}
	m.dirs[dir] = true
	return nil
}

func (m *MemFS) open(name string, truncate bool, op string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkFault(op, name); err != nil {
		return nil, err
	}
	if _, ok := m.live[name]; !ok || truncate {
		m.live[name] = nil
		if _, durable := m.durable[name]; !durable {
			m.pendCreate[name] = true
		}
	}
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Create(name string) (File, error) { return m.open(name, true, "create") }
func (m *MemFS) Append(name string) (File, error) { return m.open(name, false, "append") }

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.live[name]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

func (m *MemFS) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkFault("rename", oldName); err != nil {
		return err
	}
	data, ok := m.live[oldName]
	if !ok {
		return fmt.Errorf("memfs: rename %s: %w", oldName, os.ErrNotExist)
	}
	delete(m.live, oldName)
	m.live[newName] = data
	if d, durable := m.durable[oldName]; durable {
		// Synced content follows the inode to its new name; the OLD name
		// still resolves after a crash until SyncDir retires it.
		if !m.pendCreate[oldName] {
			m.pendRemove[oldName] = d
		}
		m.durable[newName] = d
		delete(m.durable, oldName)
	}
	if m.pendCreate[oldName] || !wasDurableName(m, newName) {
		m.pendCreate[newName] = true
	}
	delete(m.pendCreate, oldName)
	return nil
}

// wasDurableName reports whether name's directory entry is durable:
// either it has durable content under a non-pending name, or a prior
// SyncDir recorded its (possibly empty) existence.
func wasDurableName(m *MemFS, name string) bool {
	_, ok := m.durable[name]
	return ok && !m.pendCreate[name]
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkFault("remove", name); err != nil {
		return err
	}
	if _, ok := m.live[name]; !ok {
		return fmt.Errorf("memfs: remove %s: %w", name, os.ErrNotExist)
	}
	delete(m.live, name)
	if m.pendCreate[name] {
		// Never durably linked: gone entirely.
		delete(m.pendCreate, name)
		delete(m.durable, name)
		return nil
	}
	if d, durable := m.durable[name]; durable {
		m.pendRemove[name] = d
		delete(m.durable, name)
	}
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for name := range m.live {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/") {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkFault("truncate", name); err != nil {
		return err
	}
	data, ok := m.live[name]
	if !ok {
		return fmt.Errorf("memfs: truncate %s: %w", name, os.ErrNotExist)
	}
	if int64(len(data)) > size {
		m.live[name] = data[:size]
		if d, durable := m.durable[name]; durable && int64(len(d)) > size {
			m.durable[name] = d[:size]
		}
	}
	return nil
}

func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkFault("syncdir", dir); err != nil {
		return err
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	for name := range m.pendCreate {
		if strings.HasPrefix(name, prefix) {
			// Existence becomes durable; content stays at its synced
			// length (zero bytes until the file itself is synced).
			if _, ok := m.durable[name]; !ok {
				m.durable[name] = nil
			}
			delete(m.pendCreate, name)
		}
	}
	for name := range m.pendRemove {
		if strings.HasPrefix(name, prefix) {
			delete(m.durable, name)
			delete(m.pendRemove, name)
		}
	}
	return nil
}

// memFile is one open MemFS file handle.
type memFile struct {
	fs     *MemFS
	name   string
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("memfs: write to closed file %s", f.name)
	}
	for suffix, n := range f.fs.shortWrite {
		if strings.HasSuffix(f.name, suffix) {
			delete(f.fs.shortWrite, suffix)
			if n > len(p) {
				n = len(p)
			}
			f.fs.live[f.name] = append(f.fs.live[f.name], p[:n]...)
			return n, fmt.Errorf("memfs: short write on %s (%d of %d bytes)", f.name, n, len(p))
		}
	}
	if err := f.fs.checkFault("write", f.name); err != nil {
		return 0, err
	}
	f.fs.live[f.name] = append(f.fs.live[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.checkFault("sync", f.name); err != nil {
		return err
	}
	// fsync makes the CONTENT durable (it travels with the inode, so a
	// later rename keeps it); whether the NAME survives a crash is the
	// directory's business — Crash drops still-pendCreate names even
	// when their content was synced.
	f.fs.durable[f.name] = append([]byte(nil), f.fs.live[f.name]...)
	return nil
}

func (f *memFile) Close() error {
	f.closed = true
	return nil
}

// join builds FS paths with forward slashes on every platform — MemFS
// keys match regardless of os.PathSeparator.
func join(dir, name string) string { return filepath.ToSlash(filepath.Join(dir, name)) }
