package wal

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"unistore/internal/keys"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// SyncPolicy is when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged write is on
	// disk before the caller sees the acknowledgement. The daemon
	// default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker (Options.SyncEvery):
	// bounded data loss, amortized cost.
	SyncInterval
	// SyncOff never fsyncs (Close still does): the simulation setting —
	// simnet benchmarks keep their perf baselines, and the file content
	// is still there for same-machine restarts.
	SyncOff
)

// ParseSyncPolicy maps the flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off", "none":
		return SyncOff, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown fsync policy %q (always|interval|off)", s)
}

// Options parameterizes Open.
type Options struct {
	// FS is the disk surface; nil means the real one.
	FS FS
	// Sync is the fsync policy for appended records.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period; 0 means 100ms.
	SyncEvery time.Duration
	// CompactAfter is the log size (bytes) past which a mutation
	// triggers snapshot + log-truncation compaction. 0 means 4 MiB;
	// negative disables compaction.
	CompactAfter int64
	// NoGroupCommit disables group commit under SyncAlways: every
	// append fsyncs inline, serialized under the DB lock — the
	// pre-batching baseline benchmarks compare against. With group
	// commit (the default), concurrent appends share fsyncs: the first
	// writer becomes the sync leader while later writers queue behind
	// it, and one disk flush then covers every record appended before
	// it started. Durability is identical — no append is acknowledged
	// before a completed fsync covers it. The other policies ignore
	// this knob.
	NoGroupCommit bool
}

// RecoveryInfo reports what Open found.
type RecoveryInfo struct {
	// HadState is whether the directory held any prior log, snapshot,
	// or marker — false means a genuinely fresh start (first boot, or a
	// wiped disk, which falls back to full-state sync on rejoin).
	HadState bool
	// Clean is whether the previous process shut down gracefully (the
	// clean-shutdown marker matched the log exactly, so no torn tail
	// was possible).
	Clean bool
	// SnapshotGen is the generation whose snapshot was loaded (0: none).
	SnapshotGen uint64
	// SnapshotEntries is the entry count loaded from the snapshot.
	SnapshotEntries int
	// Replayed is the number of log records replayed over the snapshot.
	Replayed int
	// TornBytes is the size of the truncated torn tail (0 when the log
	// ended exactly on a record boundary).
	TornBytes int64
}

// DB is one store's durability: an open write-ahead log plus the
// snapshot generation machinery. It implements store.Durability, so
// the store logs every accepted mutation through it before applying.
type DB struct {
	fs   FS
	dir  string
	st   *store.Store
	opts Options
	info RecoveryInfo

	mu      sync.Mutex
	gen     uint64
	w       File
	walSize int64
	dirty   bool // appended records not yet fsynced
	err     error
	closed  bool

	// Group-commit state (all under mu). writeSeq tickets appends,
	// syncedSeq is the highest ticket a completed fsync covers, and
	// syncing marks a leader holding the file handle outside the lock
	// (Compact and Close must wait it out before swapping or closing
	// the file). syncDone signals both leader completion and syncedSeq
	// advances.
	writeSeq  uint64
	syncedSeq uint64
	syncing   bool
	syncDone  *sync.Cond
	syncs     int64 // completed fsyncs (bench/testing hook)

	stopCh chan struct{}
	wg     sync.WaitGroup
}

const markerName = "CLEAN"

func walName(gen uint64) string  { return fmt.Sprintf("wal-%06d", gen) }
func snapName(gen uint64) string { return fmt.Sprintf("snap-%06d", gen) }

// Open recovers dir into st (which must not be mutated concurrently —
// open the DB before the peer starts serving) and attaches the log to
// it: from then on every mutation the store accepts is logged first.
// A missing or empty dir is a fresh start; a crashed dir replays the
// latest valid snapshot plus the log and truncates the torn tail.
func Open(dir string, st *store.Store, opts Options) (*DB, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if opts.CompactAfter == 0 {
		opts.CompactAfter = 4 << 20
	}
	d := &DB{fs: opts.FS, dir: dir, st: st, opts: opts, stopCh: make(chan struct{})}
	d.syncDone = sync.NewCond(&d.mu)
	if err := d.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	st.SetDurability(d)
	if opts.Sync == SyncInterval {
		d.wg.Add(1)
		go d.syncLoop()
	}
	return d, nil
}

// recover scans dir, loads the newest valid snapshot, replays its log
// (truncating a torn tail), and leaves the log open for appending.
func (d *DB) recover() error {
	names, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("wal: readdir %s: %w", d.dir, err)
	}
	var snaps, wals []uint64
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			d.fs.Remove(join(d.dir, name)) // interrupted snapshot write
			continue
		}
		var gen uint64
		switch {
		case strings.HasPrefix(name, "wal-"):
			if _, err := fmt.Sscanf(name, "wal-%d", &gen); err == nil {
				wals = append(wals, gen)
			}
		case strings.HasPrefix(name, "snap-"):
			if _, err := fmt.Sscanf(name, "snap-%d", &gen); err == nil {
				snaps = append(snaps, gen)
			}
		}
	}

	// The clean-shutdown marker is consumed on open: whatever happens
	// to this process, the NEXT recovery must not trust a stale marker.
	cleanGen, cleanSize := uint64(0), int64(-1)
	if data, err := d.fs.ReadFile(join(d.dir, markerName)); err == nil {
		fmt.Sscanf(string(data), "unistore-wal-clean %d %d", &cleanGen, &cleanSize)
		d.fs.Remove(join(d.dir, markerName))
		d.info.HadState = true
	}
	if len(snaps)+len(wals) > 0 {
		d.info.HadState = true
	}

	gen := uint64(0)
	for _, g := range append(append([]uint64(nil), snaps...), wals...) {
		if g > gen {
			gen = g
		}
	}
	if gen == 0 {
		gen = 1 // fresh directory
	}

	// Snapshot, if the chosen generation has one. An invalid snapshot
	// is corruption, not a crash artifact: crashes leave .tmp files
	// (removed above), never a renamed-but-short snapshot.
	if contains(snaps, gen) {
		entries, count, err := d.loadSnapshot(snapName(gen))
		if err != nil {
			return fmt.Errorf("wal: snapshot %s: %w", snapName(gen), err)
		}
		for _, e := range entries {
			d.st.Apply(e)
		}
		d.info.SnapshotGen = gen
		d.info.SnapshotEntries = count
	}

	// Replay the generation's log over it.
	walPath := join(d.dir, walName(gen))
	data, err := d.fs.ReadFile(walPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("wal: read %s: %w", walPath, err)
	}
	clean := cleanGen == gen && cleanSize == int64(len(data))
	off := 0
	for off < len(data) {
		payload, next, rerr := nextRecord(data, off)
		if rerr == nil {
			rerr = d.replayRecord(payload)
		}
		if rerr != nil {
			if clean {
				return fmt.Errorf("wal: %s corrupt at offset %d after clean shutdown: %w", walPath, off, rerr)
			}
			// The torn tail: truncate and stop — every record before it
			// replayed, nothing after it can be trusted.
			if terr := d.fs.Truncate(walPath, int64(off)); terr != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", walPath, terr)
			}
			d.info.TornBytes = int64(len(data) - off)
			data = data[:off]
			break
		}
		off = next
		d.info.Replayed++
	}
	d.info.Clean = clean

	w, err := d.fs.Append(walPath)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", walPath, err)
	}
	d.gen = gen
	d.w = w
	d.walSize = int64(len(data))

	// Older generations are superseded; their removal (and the marker's)
	// becomes durable with the directory sync.
	for _, g := range snaps {
		if g != gen {
			d.fs.Remove(join(d.dir, snapName(g)))
		}
	}
	for _, g := range wals {
		if g != gen {
			d.fs.Remove(join(d.dir, walName(g)))
		}
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", d.dir, err)
	}
	return nil
}

func contains(gens []uint64, g uint64) bool {
	for _, x := range gens {
		if x == g {
			return true
		}
	}
	return false
}

// replayRecord applies one log record to the store (no durability
// attached yet, so replay does not re-log).
func (d *DB) replayRecord(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("wal: empty record")
	}
	dec := &decoder{data: payload, off: 1}
	switch payload[0] {
	case opEntry:
		e, err := decodeEntry(dec)
		if err != nil {
			return err
		}
		d.st.Apply(e)
		return nil
	case opDrop:
		dr, err := decodeDrop(dec)
		if err != nil {
			return err
		}
		if dr.retain {
			d.st.RetainRange(dr.kind, dr.r)
		} else {
			d.st.DropRange(dr.kind, dr.r)
		}
		return nil
	}
	return fmt.Errorf("wal: unexpected op %d in log", payload[0])
}

// loadSnapshot parses and validates a whole snapshot before returning
// its entries: header count, that many entries, matching footer,
// nothing else. Any deviation is an error (snapshots are written
// atomically — rename after fsync — so a bad one is corruption).
func (d *DB) loadSnapshot(name string) ([]store.Entry, int, error) {
	data, err := d.fs.ReadFile(join(d.dir, name))
	if err != nil {
		return nil, 0, err
	}
	off := 0
	payload, off, err := nextRecord(data, off)
	if err != nil || len(payload) == 0 || payload[0] != opSnapHead {
		return nil, 0, fmt.Errorf("missing header")
	}
	dec := &decoder{data: payload, off: 1}
	count, err := dec.u64()
	if err != nil || count > uint64(len(data)/9) {
		return nil, 0, fmt.Errorf("implausible entry count")
	}
	entries := make([]store.Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		payload, off, err = nextRecord(data, off)
		if err != nil || len(payload) == 0 || payload[0] != opEntry {
			return nil, 0, fmt.Errorf("entry %d/%d unreadable", i, count)
		}
		e, derr := decodeEntry(&decoder{data: payload, off: 1})
		if derr != nil {
			return nil, 0, fmt.Errorf("entry %d/%d: %w", i, count, derr)
		}
		entries = append(entries, e)
	}
	payload, off, err = nextRecord(data, off)
	if err != nil || len(payload) == 0 || payload[0] != opSnapFoot {
		return nil, 0, fmt.Errorf("missing footer")
	}
	dec = &decoder{data: payload, off: 1}
	foot, err := dec.u64()
	if err != nil || foot != count {
		return nil, 0, fmt.Errorf("footer count mismatch")
	}
	if off != len(data) {
		return nil, 0, fmt.Errorf("%d trailing bytes", len(data)-off)
	}
	return entries, int(count), nil
}

// Info reports what recovery found.
func (d *DB) Info() RecoveryInfo { return d.info }

// Err returns the sticky durability error: once an append or sync
// fails, the store rejects further writes rather than acknowledging
// data the log does not hold.
func (d *DB) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// Gen returns the current log generation (testing hook).
func (d *DB) Gen() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gen
}

// LogSize returns the current log size in bytes.
func (d *DB) LogSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.walSize
}

// --- store.Durability -----------------------------------------------------

// LogApply logs one accepted mutation; the store calls it BEFORE
// applying, and a returned error rejects the write.
func (d *DB) LogApply(e store.Entry) error {
	return d.append(encodeEntry(nil, e))
}

// LogDrop logs one range purge (DropRange, or RetainRange with retain
// set) as a single logical record.
func (d *DB) LogDrop(kind triple.IndexKind, r keys.Range, retain bool) error {
	return d.append(encodeDrop(nil, kind, r, retain))
}

func (d *DB) append(payload []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	if d.closed {
		return fmt.Errorf("wal: %s: closed", d.dir)
	}
	buf := appendRecord(nil, payload)
	if _, err := d.w.Write(buf); err != nil {
		// A partial frame may now sit at the log tail; recovery's
		// torn-tail truncation owns that case. Reject this and every
		// following write.
		d.err = fmt.Errorf("wal: append: %w", err)
		return d.err
	}
	d.walSize += int64(len(buf))
	d.dirty = true
	if d.opts.Sync != SyncAlways {
		return nil
	}
	if d.opts.NoGroupCommit {
		if err := d.w.Sync(); err != nil {
			d.err = fmt.Errorf("wal: fsync: %w", err)
			return d.err
		}
		d.syncs++
		d.dirty = false
		return nil
	}
	return d.groupCommitLocked()
}

// groupCommitLocked makes the caller's freshly written record durable
// while letting concurrent appends share the fsync. The caller takes a
// ticket; whoever finds no sync in flight becomes the leader, captures
// the current ticket high-water mark, releases the lock for the
// duration of the disk flush (appends keep flowing in behind it), and
// on return credits every ticket the flush covered. Followers wait on
// the condition until a completed flush covers their ticket — which is
// exactly the SyncAlways guarantee, paid once per batch instead of
// once per record.
func (d *DB) groupCommitLocked() error {
	d.writeSeq++
	seq := d.writeSeq
	for {
		if d.err != nil {
			return d.err
		}
		if d.syncedSeq >= seq {
			return nil
		}
		if d.syncing {
			d.syncDone.Wait()
			continue
		}
		d.syncing = true
		target := d.writeSeq
		w := d.w
		d.mu.Unlock()
		err := w.Sync()
		d.mu.Lock()
		d.syncing = false
		if err != nil {
			if d.err == nil {
				d.err = fmt.Errorf("wal: fsync: %w", err)
			}
		} else {
			d.syncs++
			if target > d.syncedSeq {
				d.syncedSeq = target
			}
			if d.syncedSeq >= d.writeSeq {
				d.dirty = false
			}
		}
		d.syncDone.Broadcast()
	}
}

// waitSyncIdleLocked blocks until no group-commit leader holds the
// file handle outside the lock; Compact (which swaps the file) and
// Close/Sync (which flush or close it) must not race a leader's fsync.
func (d *DB) waitSyncIdleLocked() {
	for d.syncing {
		d.syncDone.Wait()
	}
}

// Syncs returns the number of completed fsyncs (bench/testing hook:
// group commit's batching factor is appends over syncs).
func (d *DB) Syncs() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// WantCompact reports whether the log has outgrown the compaction
// threshold. The store consults it after each mutation (under its own
// lock) and calls Compact with a consistent fact snapshot.
func (d *DB) WantCompact() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err == nil && !d.closed && d.opts.CompactAfter > 0 && d.walSize >= d.opts.CompactAfter
}

// Compact writes facts as the next generation's snapshot and switches
// to its empty log: snapshot to a temp file, fsync, rename, fsync dir,
// create the new log, fsync dir, then drop the old generation. A crash
// at ANY point leaves a recoverable directory — before the rename the
// old generation is untouched; after it the new snapshot already holds
// everything the old log did. The caller (the store) holds its own
// lock, so no mutation can slip between the snapshot and the switch.
func (d *DB) Compact(facts []store.Entry) (err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.waitSyncIdleLocked()
	if d.err != nil {
		return d.err
	}
	// A failed compaction poisons the DB: past the snapshot rename the
	// NEW generation is what recovery will load, so appending more to
	// the old log would silently lose those writes. Refusing all further
	// writes is the only answer that never drops an acked one.
	defer func() {
		if err != nil {
			d.err = err
		}
	}()
	newGen := d.gen + 1
	tmp := join(d.dir, snapName(newGen)+".tmp")
	f, err := d.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	buf := appendRecord(nil, encodeCount(opSnapHead, uint64(len(facts))))
	for _, e := range facts {
		buf = appendRecord(buf, encodeEntry(nil, e))
		if len(buf) >= 1<<20 {
			if _, err := f.Write(buf); err != nil {
				f.Close()
				d.fs.Remove(tmp)
				return fmt.Errorf("wal: compact: %w", err)
			}
			buf = buf[:0]
		}
	}
	buf = appendRecord(buf, encodeCount(opSnapFoot, uint64(len(facts))))
	if _, err := f.Write(buf); err != nil {
		f.Close()
		d.fs.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		d.fs.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	f.Close()
	if err := d.fs.Rename(tmp, join(d.dir, snapName(newGen))); err != nil {
		d.fs.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	nw, err := d.fs.Create(join(d.dir, walName(newGen)))
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		nw.Close()
		return fmt.Errorf("wal: compact: %w", err)
	}
	// The switch: the new generation is durable, adopt it.
	oldGen := d.gen
	d.w.Close()
	d.w = nw
	d.gen = newGen
	d.walSize = 0
	d.dirty = false
	// Old-generation cleanup is best effort — recovery always picks the
	// highest generation, so leftovers cost disk, not correctness.
	d.fs.Remove(join(d.dir, walName(oldGen)))
	d.fs.Remove(join(d.dir, snapName(oldGen)))
	d.fs.SyncDir(d.dir)
	return nil
}

// --- sync & close ---------------------------------------------------------

// Sync flushes appended records to disk (the SyncInterval ticker body;
// also useful directly).
func (d *DB) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncLocked()
}

func (d *DB) syncLocked() error {
	d.waitSyncIdleLocked()
	if d.err != nil {
		return d.err
	}
	if !d.dirty || d.w == nil {
		return nil
	}
	if err := d.w.Sync(); err != nil {
		d.err = fmt.Errorf("wal: fsync: %w", err)
		return d.err
	}
	d.syncs++
	d.dirty = false
	d.syncedSeq = d.writeSeq
	d.syncDone.Broadcast()
	return nil
}

func (d *DB) syncLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.Sync()
		case <-d.stopCh:
			return
		}
	}
}

// Close flushes and fsyncs the log regardless of the sync policy,
// writes the clean-shutdown marker, and closes the file: the next Open
// sees a clean directory and skips torn-tail truncation. The store
// rejects writes arriving after Close (callers stop traffic first).
func (d *DB) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.stopCh)
	d.wg.Wait()

	d.mu.Lock()
	defer d.mu.Unlock()
	d.waitSyncIdleLocked()
	var first error
	if d.dirty && d.w != nil {
		if err := d.w.Sync(); err != nil && first == nil {
			first = err
		}
		d.dirty = false
		d.syncedSeq = d.writeSeq
		d.syncDone.Broadcast()
	}
	if d.err == nil {
		// A clean marker is only truthful if every append succeeded.
		if f, err := d.fs.Create(join(d.dir, markerName)); err == nil {
			fmt.Fprintf(f, "unistore-wal-clean %d %d\n", d.gen, d.walSize)
			if err := f.Sync(); err != nil && first == nil {
				first = err
			}
			f.Close()
			if err := d.fs.SyncDir(d.dir); err != nil && first == nil {
				first = err
			}
		} else if first == nil {
			first = err
		}
	}
	if d.w != nil {
		if err := d.w.Close(); err != nil && first == nil {
			first = err
		}
		d.w = nil
	}
	if first == nil {
		first = d.err
	}
	return first
}
