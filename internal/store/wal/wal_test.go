package wal

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"unistore/internal/keys"
	"unistore/internal/store"
	"unistore/internal/triple"
)

func testTriple(i int) triple.Triple {
	return triple.Triple{
		OID:  fmt.Sprintf("oid%03d", i),
		Attr: "name",
		Val:  triple.S(fmt.Sprintf("value-%03d", i)),
	}
}

// mustOpen opens dir into a fresh store and fails the test on error.
func mustOpen(t *testing.T, fs FS, dir string, opts Options) (*store.Store, *DB) {
	t.Helper()
	opts.FS = fs
	st := store.New()
	db, err := Open(dir, st, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st, db
}

// sameFacts asserts two stores hold the identical versioned fact sets
// (tombstones included) — the recovery correctness check.
func sameFacts(t *testing.T, want, got *store.Store) {
	t.Helper()
	wf, gf := want.Facts(), got.Facts()
	if len(wf) != len(gf) {
		t.Fatalf("fact count: want %d, got %d", len(wf), len(gf))
	}
	for i := range wf {
		if !reflect.DeepEqual(wf[i], gf[i]) {
			t.Fatalf("fact %d differs:\nwant %+v\ngot  %+v", i, wf[i], gf[i])
		}
	}
}

func TestRoundTripCleanShutdown(t *testing.T) {
	fs := NewMemFS()
	st, db := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	for i := 0; i < 40; i++ {
		if !st.PutAll(testTriple(i), uint64(i+1)) {
			t.Fatalf("put %d rejected", i)
		}
	}
	// Tombstone a few facts so recovery proves deletions persist too.
	for i := 0; i < 5; i++ {
		tr := testTriple(i)
		for _, kind := range triple.AllIndexKinds {
			st.DeleteEntry(kind, tr.OID, tr.Attr, 1000+uint64(i))
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	defer db2.Close()
	info := db2.Info()
	if !info.Clean {
		t.Errorf("clean shutdown not detected: %+v", info)
	}
	if info.TornBytes != 0 {
		t.Errorf("torn bytes after clean shutdown: %+v", info)
	}
	if !info.HadState {
		t.Errorf("HadState false on a populated dir")
	}
	sameFacts(t, st, st2)
}

func TestFreshDirHasNoState(t *testing.T) {
	fs := NewMemFS()
	_, db := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	defer db.Close()
	if db.Info().HadState {
		t.Errorf("fresh dir reported prior state")
	}
}

// TestCrashMidRecord is matrix point 1: the process dies while a record
// frame is half-written. The acked prefix survives; the torn tail is
// truncated; the half-written write was never acked.
func TestCrashMidRecord(t *testing.T) {
	fs := NewMemFS()
	st, _ := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	for i := 0; i < 10; i++ {
		if !st.PutEntry(triple.ByOID, testTriple(i), uint64(i+1)) {
			t.Fatalf("put %d rejected", i)
		}
	}
	acked := st.Facts()

	fs.ShortWrite("wal-000001", 7) // next frame stops after 7 bytes
	if st.PutEntry(triple.ByOID, testTriple(10), 11) {
		t.Fatalf("write after short write was acked")
	}
	if st.DurabilityErr() == nil {
		t.Fatalf("short write did not stick")
	}
	// kill -9: unsynced bytes gone, except the 7 torn ones that reached
	// the platter.
	fs.Crash(map[string]int{"wal-000001": 7})

	st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	defer db2.Close()
	info := db2.Info()
	if info.Clean {
		t.Errorf("crash reported as clean")
	}
	if info.TornBytes != 7 {
		t.Errorf("torn bytes = %d, want 7", info.TornBytes)
	}
	if info.Replayed != 10 {
		t.Errorf("replayed %d records, want 10", info.Replayed)
	}
	if got := st2.Facts(); !reflect.DeepEqual(acked, got) {
		t.Fatalf("recovered facts differ from acked prefix")
	}
}

// TestCrashPostRecordPreFsync is matrix point 2: records fully written
// but not yet fsynced (interval/off policy) are lost on crash — and
// that loss is a clean truncation, not an error. Under SyncAlways the
// same crash loses nothing.
func TestCrashPostRecordPreFsync(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		fs := NewMemFS()
		st, _ := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
		for i := 0; i < 8; i++ {
			st.PutEntry(triple.ByOID, testTriple(i), uint64(i+1))
		}
		fs.Crash(nil)
		st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
		defer db2.Close()
		sameFacts(t, st, st2)
	})
	t.Run("off", func(t *testing.T) {
		fs := NewMemFS()
		st, db := mustOpen(t, fs, "d", Options{Sync: SyncOff})
		for i := 0; i < 4; i++ {
			st.PutEntry(triple.ByOID, testTriple(i), uint64(i+1))
		}
		if err := db.Sync(); err != nil { // explicit checkpoint
			t.Fatalf("Sync: %v", err)
		}
		synced := st.Facts()
		for i := 4; i < 8; i++ {
			st.PutEntry(triple.ByOID, testTriple(i), uint64(i+1))
		}
		fs.Crash(nil)
		st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncOff})
		defer db2.Close()
		if got := st2.Facts(); !reflect.DeepEqual(synced, got) {
			t.Fatalf("recovered %d facts, want the %d synced ones", len(got), len(synced))
		}
		if db2.Info().Clean {
			t.Errorf("crash reported as clean")
		}
	})
}

// compactNow drives the store until the tiny threshold forces a
// compaction, then asserts the generation advanced.
func TestCompactionRoundTrip(t *testing.T) {
	fs := NewMemFS()
	st, db := mustOpen(t, fs, "d", Options{Sync: SyncAlways, CompactAfter: 512})
	for i := 0; i < 50; i++ {
		st.PutEntry(triple.ByOID, testTriple(i), uint64(i+1))
	}
	if db.Gen() < 2 {
		t.Fatalf("no compaction happened (gen=%d)", db.Gen())
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncAlways, CompactAfter: 512})
	defer db2.Close()
	if db2.Info().SnapshotGen == 0 {
		t.Errorf("recovery used no snapshot: %+v", db2.Info())
	}
	sameFacts(t, st, st2)
}

// TestCrashMidSnapshot is matrix point 3: the snapshot write itself
// fails (or the process dies mid-write, leaving only a .tmp). The old
// generation is untouched, so every acked write recovers.
func TestCrashMidSnapshot(t *testing.T) {
	fs := NewMemFS()
	st, _ := mustOpen(t, fs, "d", Options{Sync: SyncAlways, CompactAfter: 512})
	boom := errors.New("disk full")
	fs.FailOp("sync", ".tmp", 0, boom)
	for i := 0; i < 50; i++ {
		st.PutEntry(triple.ByOID, testTriple(i), uint64(i+1))
	}
	// The failed compaction is a durability error: writes stop rather
	// than outrun the log.
	if st.DurabilityErr() == nil {
		t.Fatalf("failed compaction did not surface")
	}
	acked := st.Facts()
	fs.Crash(nil)
	st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	defer db2.Close()
	if got := st2.Facts(); !reflect.DeepEqual(acked, got) {
		t.Fatalf("recovered facts differ from acked set after snapshot fault")
	}
}

// TestCrashMidCompactionSwap is matrix point 4: the crash lands between
// the snapshot rename and the generation switch becoming durable. Both
// halves must recover every acked write — from the old generation when
// the rename never became durable, from the new snapshot when it did.
func TestCrashMidCompactionSwap(t *testing.T) {
	t.Run("before-dirsync", func(t *testing.T) {
		fs := NewMemFS()
		st, _ := mustOpen(t, fs, "d", Options{Sync: SyncAlways, CompactAfter: 512})
		boom := errors.New("kernel went away")
		fs.FailOp("syncdir", "", 0, boom) // first dir sync after the rename
		for i := 0; i < 50; i++ {
			st.PutEntry(triple.ByOID, testTriple(i), uint64(i+1))
		}
		if st.DurabilityErr() == nil {
			t.Fatalf("failed swap did not surface")
		}
		acked := st.Facts()
		fs.Crash(nil) // rename was never durable: snap-2 vanishes
		st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
		defer db2.Close()
		if db2.Info().SnapshotGen != 0 {
			t.Errorf("expected recovery from the old generation, got %+v", db2.Info())
		}
		if got := st2.Facts(); !reflect.DeepEqual(acked, got) {
			t.Fatalf("recovered facts differ from acked set")
		}
	})
	t.Run("after-snapshot-before-newlog", func(t *testing.T) {
		fs := NewMemFS()
		st, _ := mustOpen(t, fs, "d", Options{Sync: SyncAlways, CompactAfter: 512})
		boom := errors.New("too many open files")
		fs.FailOp("create", "wal-000002", 0, boom)
		for i := 0; i < 50; i++ {
			st.PutEntry(triple.ByOID, testTriple(i), uint64(i+1))
		}
		if st.DurabilityErr() == nil {
			t.Fatalf("failed swap did not surface")
		}
		acked := st.Facts()
		fs.Crash(nil) // snap-2 is durable; wal-2 never existed
		st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
		defer db2.Close()
		if db2.Info().SnapshotGen != 2 {
			t.Errorf("expected recovery from the new snapshot, got %+v", db2.Info())
		}
		if got := st2.Facts(); !reflect.DeepEqual(acked, got) {
			t.Fatalf("recovered facts differ from acked set")
		}
	})
}

// TestCorruptMiddleRecord: a bit flip in a synced record's payload ends
// the valid prefix there — recovery keeps what precedes it, truncates
// the rest, and reports no error (no clean marker claimed otherwise).
func TestCorruptMiddleRecord(t *testing.T) {
	fs := NewMemFS()
	st, _ := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	for i := 0; i < 10; i++ {
		st.PutEntry(triple.ByOID, testTriple(i), uint64(i+1))
	}
	_ = st
	size := fs.DurableLen("wal-000001")
	fs.Crash(nil)
	fs.Corrupt("wal-000001", size/2, 0x40)
	st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	defer db2.Close()
	info := db2.Info()
	if info.Replayed == 0 || info.Replayed >= 10 {
		t.Errorf("replayed %d of 10 records around a mid-file flip", info.Replayed)
	}
	if info.TornBytes == 0 {
		t.Errorf("no truncation after corruption: %+v", info)
	}
	if got, want := st2.FactCount(), info.Replayed; got != want {
		t.Errorf("recovered %d facts from %d replayed records", got, want)
	}
}

// A clean-shutdown marker makes corruption an error instead: the
// previous process vouched for the log, so a mismatch is real damage.
func TestCorruptAfterCleanShutdownIsError(t *testing.T) {
	fs := NewMemFS()
	st, db := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	for i := 0; i < 10; i++ {
		st.PutEntry(triple.ByOID, testTriple(i), uint64(i+1))
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	fs.Corrupt("wal-000001", fs.DurableLen("wal-000001")/2, 0x08)
	if _, err := Open("d", store.New(), Options{FS: fs, Sync: SyncAlways}); err == nil {
		t.Fatalf("corrupt log accepted after clean shutdown")
	}
}

func TestDropAndRetainRangeLogged(t *testing.T) {
	fs := NewMemFS()
	st, db := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	for i := 0; i < 32; i++ {
		st.PutEntry(triple.ByOID, testTriple(i), uint64(i+1))
	}
	r := keys.PrefixRange(keys.FromBits("0"))
	if dropped := st.DropRange(triple.ByOID, r); len(dropped) == 0 {
		t.Fatalf("DropRange dropped nothing")
	}
	half := keys.PrefixRange(keys.FromBits("1"))
	st.RetainRange(triple.ByOID, half)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	defer db2.Close()
	sameFacts(t, st, st2)
}

func TestStickyWriteFailureRejectsWrites(t *testing.T) {
	fs := NewMemFS()
	st, db := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	st.PutEntry(triple.ByOID, testTriple(0), 1)
	fs.FailOp("write", "wal-000001", 0, errors.New("io error"))
	if st.PutEntry(triple.ByOID, testTriple(1), 2) {
		t.Fatalf("write acked despite log failure")
	}
	if st.DurabilityErr() == nil || db.Err() == nil {
		t.Fatalf("failure did not stick")
	}
	// The fault has cleared, but the DB stays poisoned.
	if st.PutEntry(triple.ByOID, testTriple(2), 3) {
		t.Fatalf("write acked on a poisoned log")
	}
	if st.FactCount() != 1 {
		t.Fatalf("store advanced past the log: %d facts", st.FactCount())
	}
}

// TestConcurrentWriters exercises the store↔DB locking under the race
// detector: parallel writers, with a compaction threshold low enough
// that snapshots interleave with appends.
func TestConcurrentWriters(t *testing.T) {
	fs := NewMemFS()
	st, db := mustOpen(t, fs, "d", Options{Sync: SyncInterval, SyncEvery: time.Millisecond, CompactAfter: 2048})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				st.PutEntry(triple.ByOID, testTriple(g*1000+i), uint64(g*1000+i+1))
			}
		}(g)
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	defer db2.Close()
	sameFacts(t, st, st2)
}

// TestOSFSRoundTrip runs the same story against the real filesystem —
// the code path the daemon uses.
func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	db, err := Open(dir, st, Options{Sync: SyncAlways, CompactAfter: 1024})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 60; i++ {
		st.PutAll(testTriple(i), uint64(i+1))
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2 := store.New()
	db2, err := Open(dir, st2, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if !db2.Info().Clean {
		t.Errorf("clean shutdown not detected on OS fs")
	}
	sameFacts(t, st, st2)
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "": SyncAlways,
		"interval": SyncInterval,
		"off":      SyncOff, "none": SyncOff,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Errorf("bad policy accepted")
	}
}
