package wal

import (
	"sync"
	"testing"
	"time"

	"unistore/internal/store"
	"unistore/internal/triple"
)

// slowSyncFS wraps an FS so every file fsync takes a fixed pause —
// long enough that concurrent appends pile up behind one group-commit
// leader, making the batching observable in the sync count.
type slowSyncFS struct {
	FS
	delay time.Duration
}

func (f slowSyncFS) Create(name string) (File, error) {
	w, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{File: w, delay: f.delay}, nil
}

func (f slowSyncFS) Append(name string) (File, error) {
	w, err := f.FS.Append(name)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{File: w, delay: f.delay}, nil
}

type slowSyncFile struct {
	File
	delay time.Duration
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// TestGroupCommitBatchesFsyncs drives concurrent SyncAlways appenders
// against a slow disk and asserts (a) far fewer fsyncs than appended
// records — the batching — and (b) a restart recovers every write —
// the unchanged durability contract. Appends go straight to LogApply:
// the commit queue forms from whatever concurrency the caller has
// (the store's own lock serializes one peer's writes, but the log is
// shared infrastructure and must batch whoever shows up).
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	mem := NewMemFS()
	fs := slowSyncFS{FS: mem, delay: time.Millisecond}
	_, db := mustOpen(t, fs, "d", Options{Sync: SyncAlways})

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr := testTriple(w*perWriter + i)
				e := store.Entry{Kind: triple.AllIndexKinds[0],
					Key:    triple.IndexKey(tr, triple.AllIndexKinds[0]),
					Triple: tr, Version: uint64(w*perWriter + i + 1)}
				if err := db.LogApply(e); err != nil {
					t.Errorf("append %d/%d: %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := db.Err(); err != nil {
		t.Fatalf("sticky error after writes: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, db2 := mustOpen(t, mem, "d", Options{Sync: SyncAlways})
	defer db2.Close()
	info := db2.Info()
	const records = writers * perWriter
	if info.Replayed != records {
		t.Fatalf("recovered %d of %d records: %+v", info.Replayed, records, info)
	}

	// With 200 concurrent appends against a 1ms disk, batches must have
	// formed. Half is a loose bound — in practice batching is 10x or
	// better.
	if db.Syncs() >= records/2 {
		t.Errorf("group commit did not batch: %d fsyncs for %d records", db.Syncs(), records)
	}
}

// TestNoGroupCommitSyncsEveryAppend pins the baseline: with batching
// disabled, SyncAlways pays one fsync per logged record.
func TestNoGroupCommitSyncsEveryAppend(t *testing.T) {
	fs := NewMemFS()
	st, db := mustOpen(t, fs, "d", Options{Sync: SyncAlways, NoGroupCommit: true})
	const puts = 20
	for i := 0; i < puts; i++ {
		if !st.PutAll(testTriple(i), uint64(i+1)) {
			t.Fatalf("put %d rejected", i)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2, db2 := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	defer db2.Close()
	records := int64(db2.Info().Replayed)
	if records == 0 {
		t.Fatalf("nothing replayed")
	}
	if db.Syncs() != records {
		t.Errorf("baseline fsync count: want %d (one per record), got %d", records, db.Syncs())
	}
	sameFacts(t, st, st2)
}

// failSyncFS wraps an FS so file fsyncs fail while the switch is on.
type failSyncFS struct {
	FS
	mu   sync.Mutex
	fail bool
}

func (f *failSyncFS) set(fail bool) {
	f.mu.Lock()
	f.fail = fail
	f.mu.Unlock()
}

func (f *failSyncFS) failing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fail
}

func (f *failSyncFS) Create(name string) (File, error) {
	w, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return failSyncFile{File: w, fs: f}, nil
}

func (f *failSyncFS) Append(name string) (File, error) {
	w, err := f.FS.Append(name)
	if err != nil {
		return nil, err
	}
	return failSyncFile{File: w, fs: f}, nil
}

type failSyncFile struct {
	File
	fs *failSyncFS
}

func (f failSyncFile) Sync() error {
	if f.fs.failing() {
		return errSyncFault
	}
	return f.File.Sync()
}

var errSyncFault = errFault("injected fsync failure")

type errFault string

func (e errFault) Error() string { return string(e) }

// TestGroupCommitFsyncFailurePoisons proves a failed shared fsync
// rejects every append it covered: no writer is acknowledged by a
// flush that never reached the disk.
func TestGroupCommitFsyncFailurePoisons(t *testing.T) {
	fs := &failSyncFS{FS: NewMemFS()}
	st, db := mustOpen(t, fs, "d", Options{Sync: SyncAlways})
	if !st.PutAll(testTriple(0), 1) {
		t.Fatalf("put rejected before fault")
	}
	fs.set(true)
	if st.PutAll(testTriple(1), 2) {
		t.Errorf("put acknowledged despite failed fsync")
	}
	if db.Err() == nil {
		t.Errorf("no sticky error after failed fsync")
	}
	fs.set(false)
	if st.PutAll(testTriple(2), 3) {
		t.Errorf("poisoned DB accepted a later write")
	}
}
