package wal

import (
	"reflect"
	"testing"

	"unistore/internal/store"
	"unistore/internal/triple"
)

// seedLog builds a small valid log deterministically — the committed
// fuzz seeds are this log whole, truncated, and bit-flipped.
func seedLog() []byte {
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = appendRecord(buf, encodeEntry(nil, store.Entry{
			Kind:    triple.ByOID,
			Key:     triple.IndexKey(testFuzzTriple(i), triple.ByOID),
			Triple:  testFuzzTriple(i),
			Version: uint64(i + 1),
		}))
	}
	return buf
}

func testFuzzTriple(i int) triple.Triple {
	return triple.Triple{OID: "oid" + string(rune('a'+i)), Attr: "name", Val: triple.N(float64(i))}
}

// FuzzWALReplay feeds arbitrary bytes to recovery as a crashed log:
// Open must recover a valid prefix or return an error — never panic —
// and whatever it accepts must round-trip through a clean close and a
// second recovery unchanged.
func FuzzWALReplay(f *testing.F) {
	valid := seedLog()
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(valid[:7])            // torn header
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20 // CRC mismatch mid-log
	f.Add(flipped)
	huge := append([]byte(nil), valid...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f // absurd length prefix
	f.Add(huge)
	f.Add(appendRecord(nil, []byte{opSnapHead, 0, 0, 0, 0, 0, 0, 0, 0})) // snapshot op in a log
	f.Add(appendRecord(nil, []byte{}))                                   // empty payload

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := NewMemFS()
		fs.MkdirAll("d")
		w, err := fs.Create("d/wal-000001")
		if err != nil {
			t.Fatal(err)
		}
		w.Write(data)
		w.Sync()
		w.Close()
		fs.SyncDir("d")

		st := store.New()
		db, err := Open("d", st, Options{FS: fs, Sync: SyncOff})
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		accepted := st.Facts()
		if err := db.Close(); err != nil {
			t.Fatalf("Close after accepted log: %v", err)
		}

		st2 := store.New()
		db2, err := Open("d", st2, Options{FS: fs, Sync: SyncOff})
		if err != nil {
			t.Fatalf("accepted log failed clean reopen: %v", err)
		}
		defer db2.Close()
		if !reflect.DeepEqual(accepted, st2.Facts()) {
			t.Fatalf("accepted log did not round-trip: %d vs %d facts", len(accepted), len(st2.Facts()))
		}
	})
}
