package store

import (
	"fmt"
	"sort"
	"sync"

	"unistore/internal/keys"
	"unistore/internal/triple"
)

// Entry is one stored index entry: a triple filed under one of its three
// placement keys (paper Fig. 2), with an update version and a tombstone
// flag. Versions implement the "update functionality with lose
// consistency guarantees" the paper inherits from P-Grid [4]: replicas
// keep the highest version they have seen, with a deterministic
// tie-break so concurrent replicas converge.
type Entry struct {
	Kind    triple.IndexKind
	Key     keys.Key
	Triple  triple.Triple
	Version uint64
	Deleted bool
}

// WireSize estimates the serialized entry size for network accounting.
func (e Entry) WireSize() int { return e.Triple.WireSize() + e.Key.Len()/8 + 12 }

// supersedes reports whether candidate should replace old under
// last-writer-wins with deterministic tie-breaking: higher version wins;
// at equal versions a tombstone wins, then the larger value.
func supersedes(candidate, old Entry) bool {
	if candidate.Version != old.Version {
		return candidate.Version > old.Version
	}
	if candidate.Deleted != old.Deleted {
		return candidate.Deleted
	}
	return candidate.Triple.Val.Compare(old.Triple.Val) > 0
}

// Supersedes exposes the LWW tie-break so replication layers that
// coalesce in-flight entries drop exactly the entry the store would
// discard anyway — anything else risks two replicas keeping different
// winners of a version tie.
func (e Entry) Supersedes(old Entry) bool { return supersedes(e, old) }

// factID identifies a logical fact within one index: (kind, OID, Attr).
// A peer may hold, say, only the A#v entry of a fact — the other two
// entries live on the peers owning their placement keys.
type factID struct {
	kind triple.IndexKind
	oid  string
	attr string
}

// Durability is the persistence boundary behind the store. When one is
// attached, every accepted mutation is logged BEFORE it is applied, so
// an acknowledged write is one the log holds; a logging failure rejects
// the write (and sticks — see DurabilityErr). WantCompact/Compact let
// the implementation fold the log into a snapshot at a moment the store
// guarantees is quiescent: both are called with the store's exclusive
// lock held, so the fact slice Compact receives is a consistent image.
type Durability interface {
	LogApply(e Entry) error
	LogDrop(kind triple.IndexKind, r keys.Range, retain bool) error
	WantCompact() bool
	Compact(facts []Entry) error
}

// Store is the local storage service of one peer: three ordered triple
// indexes plus versioned fact bookkeeping. It is safe for concurrent
// use: in the simulator's concurrent mode a peer's worker goroutine,
// protocol timers, and query drivers all touch the store in parallel.
// Mutators take the exclusive lock; readers share it.
type Store struct {
	mu     sync.RWMutex
	idx    [3]*btree // one ordered index per triple.IndexKind
	facts  map[factID]Entry
	dur    Durability
	durErr error
}

// New creates an empty store.
func New() *Store {
	s := &Store{facts: make(map[factID]Entry)}
	for i := range s.idx {
		s.idx[i] = newBTree()
	}
	return s
}

// bucket is the per-key slot: all entries whose placement key coincides
// (common in the v index, where many triples share a value).
type bucket []Entry

// PutEntry files tr under exactly one index kind — the operation a DHT
// peer performs when an insert message for that kind's key reaches it.
// It reports whether the write won (stale versions are ignored).
func (s *Store) PutEntry(kind triple.IndexKind, tr triple.Triple, version uint64) bool {
	e := Entry{Kind: kind, Key: triple.IndexKey(tr, kind), Triple: tr, Version: version}
	return s.apply(e)
}

// PutAll files tr under all three index kinds — local (single-node) mode
// and the unit tests' convenience path.
func (s *Store) PutAll(tr triple.Triple, version uint64) bool {
	won := false
	for _, kind := range triple.AllIndexKinds {
		if s.PutEntry(kind, tr, version) {
			won = true
		}
	}
	return won
}

// DeleteEntry writes a tombstone for fact (oid, attr) in one index kind.
func (s *Store) DeleteEntry(kind triple.IndexKind, oid, attr string, version uint64) bool {
	tr := triple.Triple{OID: oid, Attr: attr}
	e := Entry{Kind: kind, Key: triple.IndexKey(tr, kind), Triple: tr,
		Version: version, Deleted: true}
	return s.apply(e)
}

// Apply merges an entry received from another replica (anti-entropy).
func (s *Store) Apply(e Entry) bool { return s.apply(e) }

func (s *Store) apply(e Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := factID{e.Kind, e.Triple.OID, e.Triple.Attr}
	old, had := s.facts[id]
	if had && !supersedes(e, old) {
		return false
	}
	// Log-before-apply: the write is only acknowledged once the log has
	// it. Superseded (no-op) writes are decided above and never logged.
	if s.dur != nil {
		if s.durErr != nil {
			return false
		}
		if err := s.dur.LogApply(e); err != nil {
			s.durErr = err
			return false
		}
	}
	if had {
		s.removeFromIndex(old)
	}
	s.facts[id] = e
	if !e.Deleted {
		s.addToIndex(e)
	}
	s.maybeCompactLocked()
	return true
}

// SetDurability attaches the persistence layer. It must be called
// before the store serves traffic (recovery replays into a bare store,
// THEN attaches, so replay does not re-log itself).
func (s *Store) SetDurability(d Durability) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dur = d
}

// DurabilityErr returns the first logging failure, if any. Once set,
// every subsequent mutation is rejected: the store refuses to advance
// past what the log can replay.
func (s *Store) DurabilityErr() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.durErr
}

// FactCount returns the number of versioned facts held, tombstones
// included — the "do I have recovered state" probe for restart-rejoin.
func (s *Store) FactCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.facts)
}

// maybeCompactLocked folds the log into a snapshot when the durability
// layer asks for it. Caller holds the exclusive lock, so the fact image
// handed over is consistent and no mutation can interleave.
func (s *Store) maybeCompactLocked() {
	if s.dur == nil || s.durErr != nil || !s.dur.WantCompact() {
		return
	}
	facts := make([]Entry, 0, len(s.facts))
	for _, e := range s.facts {
		facts = append(facts, e)
	}
	if err := s.dur.Compact(facts); err != nil {
		s.durErr = err
	}
}

func (s *Store) addToIndex(e Entry) {
	ks := e.Key.String()
	s.idx[e.Kind].Update(ks, func(old any) any {
		if old == nil {
			return bucket{e}
		}
		b := old.(bucket)
		for i := range b {
			if b[i].Triple.OID == e.Triple.OID && b[i].Triple.Attr == e.Triple.Attr {
				b[i] = e
				return b
			}
		}
		return append(b, e)
	})
}

func (s *Store) removeFromIndex(old Entry) {
	if old.Deleted {
		return // tombstones are not in the index
	}
	ks := old.Key.String()
	t := s.idx[old.Kind]
	v := t.Get(ks)
	if v == nil {
		return
	}
	b := v.(bucket)
	out := make(bucket, 0, len(b))
	for _, e := range b {
		if !(e.Triple.OID == old.Triple.OID && e.Triple.Attr == old.Triple.Attr) {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		t.Delete(ks)
	} else {
		t.Set(ks, out)
	}
}

// Lookup returns the live entries stored exactly at key k in the given
// index.
func (s *Store) Lookup(kind triple.IndexKind, k keys.Key) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := s.idx[kind].Get(k.String())
	if v == nil {
		return nil
	}
	b := v.(bucket)
	out := make([]Entry, 0, len(b))
	out = append(out, b...)
	return out
}

// Scan calls fn for every live entry of the given index whose key lies
// in r, in key order. fn returning false stops the scan. The shared
// lock is held for the whole scan; fn must not mutate the store.
func (s *Store) Scan(kind triple.IndexKind, r keys.Range, fn func(Entry) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := r.Lo.String()
	hi := ""
	if r.HiOpen {
		hi = r.Hi.String()
	}
	s.idx[kind].AscendRange(lo, hi, func(_ string, v any) bool {
		for _, e := range v.(bucket) {
			if !fn(e) {
				return false
			}
		}
		return true
	})
}

// FactsEach calls fn for every versioned fact the peer holds (live and
// tombstoned), in unspecified order and without copying or sorting —
// the iteration behind order-independent digests.
func (s *Store) FactsEach(fn func(Entry)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.facts {
		fn(e)
	}
}

// ScanDesc is Scan in descending key order: fn sees every live entry
// of the index whose key lies in r, highest key first (entries sharing
// a key keep their bucket order). The descending page server uses it
// to stream a partition from the top.
func (s *Store) ScanDesc(kind triple.IndexKind, r keys.Range, fn func(Entry) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := r.Lo.String()
	hi := ""
	if r.HiOpen {
		hi = r.Hi.String()
	}
	s.idx[kind].DescendRange(lo, hi, func(_ string, v any) bool {
		for _, e := range v.(bucket) {
			if !fn(e) {
				return false
			}
		}
		return true
	})
}

// CollectRange returns all live entries in r for the given index kind.
func (s *Store) CollectRange(kind triple.IndexKind, r keys.Range) []Entry {
	var out []Entry
	s.Scan(kind, r, func(e Entry) bool { out = append(out, e); return true })
	return out
}

// All returns the distinct live triples this peer stores, across all
// index kinds (a fact held under several kinds appears once) — the demo
// UI's "inspect the local data" view.
func (s *Store) All() []triple.Triple {
	seen := make(map[string]bool)
	var out []triple.Triple
	for _, e := range s.Facts() {
		if e.Deleted {
			continue
		}
		k := e.Triple.OID + "\x00" + e.Triple.Attr
		if !seen[k] {
			seen[k] = true
			out = append(out, e.Triple)
		}
	}
	return out
}

// Entries returns every live entry of one index kind in key order — the
// unit of data exchanged when peers split or replicate a partition.
func (s *Store) Entries(kind triple.IndexKind) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	s.idx[kind].Ascend(func(_ string, v any) bool {
		out = append(out, v.(bucket)...)
		return true
	})
	return out
}

// Facts returns all versioned facts including tombstones, sorted — the
// state exchanged by anti-entropy between replicas.
func (s *Store) Facts() []Entry {
	s.mu.RLock()
	out := make([]Entry, 0, len(s.facts))
	for _, e := range s.facts {
		out = append(out, e)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Triple.OID != b.Triple.OID {
			return a.Triple.OID < b.Triple.OID
		}
		return a.Triple.Attr < b.Triple.Attr
	})
	return out
}

// Version returns (version, deleted, present) for fact (kind, oid, attr).
func (s *Store) Version(kind triple.IndexKind, oid, attr string) (uint64, bool, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.facts[factID{kind, oid, attr}]
	return e.Version, e.Deleted, ok
}

// Len returns the number of live entries across all indexes.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, e := range s.facts {
		if !e.Deleted {
			n++
		}
	}
	return n
}

// LenKind returns the number of live entries in one index — the
// storage-load measure used by the load-balancing experiment (E6).
func (s *Store) LenKind(kind triple.IndexKind) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for id, e := range s.facts {
		if id.kind == kind && !e.Deleted {
			n++
		}
	}
	return n
}

// DropRange removes every entry of `kind` whose placement key falls
// inside r, returning the dropped entries (live and tombstoned) so the
// caller can ship them to the peer taking over that partition.
func (s *Store) DropRange(kind triple.IndexKind, r keys.Range) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var doomed []Entry
	for id, e := range s.facts {
		if id.kind == kind && r.Contains(e.Key) {
			doomed = append(doomed, e)
		}
	}
	if len(doomed) > 0 && s.dur != nil {
		if err := s.dur.LogDrop(kind, r, false); err != nil {
			s.durErr = err
			return nil
		}
	}
	s.purge(doomed)
	return doomed
}

// RetainRange drops every entry of `kind` whose placement key falls
// OUTSIDE r — used when a peer adopts a narrower responsibility after a
// split — returning the dropped entries.
func (s *Store) RetainRange(kind triple.IndexKind, r keys.Range) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var doomed []Entry
	for id, e := range s.facts {
		if id.kind == kind && !r.Contains(e.Key) {
			doomed = append(doomed, e)
		}
	}
	if len(doomed) > 0 && s.dur != nil {
		if err := s.dur.LogDrop(kind, r, true); err != nil {
			s.durErr = err
			return nil
		}
	}
	s.purge(doomed)
	return doomed
}

func (s *Store) purge(doomed []Entry) {
	sort.Slice(doomed, func(i, j int) bool {
		a, b := doomed[i], doomed[j]
		if a.Triple.OID != b.Triple.OID {
			return a.Triple.OID < b.Triple.OID
		}
		return a.Triple.Attr < b.Triple.Attr
	})
	for _, e := range doomed {
		delete(s.facts, factID{e.Kind, e.Triple.OID, e.Triple.Attr})
		s.removeFromIndex(e)
	}
}

// String summarizes the store.
func (s *Store) String() string {
	return fmt.Sprintf("store{live=%d oid=%d av=%d v=%d}", s.Len(),
		s.LenKind(triple.ByOID), s.LenKind(triple.ByAV), s.LenKind(triple.ByVal))
}
