// Package store implements the per-peer storage service of UniStore's
// triple storage layer: three ordered indexes (OID, A#v, v — paper
// Fig. 2) over the triples a peer is responsible for, with versioned
// entries and tombstones to support P-Grid's loosely consistent
// updates.
package store

import (
	"sort"
	"sync"
)

// item is one key→values node slot in the B-tree. Values are opaque to
// the tree; the store layer keeps []Entry per distinct key.
type item struct {
	key string
	val any
}

// degree is the B-tree minimum degree: nodes hold between degree-1 and
// 2*degree-1 items (except the root).
const degree = 32

type node struct {
	items    []item
	children []*node // nil for leaves
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// find returns the index of the first item with key >= k and whether an
// exact match sits at that index.
func (n *node) find(k string) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= k })
	return i, i < len(n.items) && n.items[i].key == k
}

// btree is an in-memory B-tree mapping string keys to arbitrary values.
// Keys iterate in lexicographic order. The zero value is not usable;
// use newBTree. All methods are safe for concurrent use: readers
// (Get, Ascend*) take a shared lock, mutators an exclusive one.
type btree struct {
	mu   sync.RWMutex
	root *node
	size int
}

func newBTree() *btree { return &btree{root: &node{}} }

// Len returns the number of distinct keys.
func (t *btree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Get returns the value stored at k, or nil.
func (t *btree) Get(k string) any {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.get(k)
}

func (t *btree) get(k string) any {
	n := t.root
	for {
		i, ok := n.find(k)
		if ok {
			return n.items[i].val
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// Set stores val at key k, replacing any previous value.
func (t *btree) Set(k string, val any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.set(k, val)
}

func (t *btree) set(k string, val any) {
	if len(t.root.items) == 2*degree-1 {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	if t.insertNonFull(t.root, k, val) {
		t.size++
	}
}

// Update fetches the value at k (nil if absent), passes it to fn, and
// stores the result atomically with respect to other tree operations.
// It is the read-modify-write primitive the store uses to append
// entries without a second traversal.
func (t *btree) Update(k string, fn func(old any) any) {
	// Simple two-pass implementation keeps the tree code small; the
	// store's hot path is iteration, not insertion.
	t.mu.Lock()
	defer t.mu.Unlock()
	t.set(k, fn(t.get(k)))
}

// insertNonFull inserts into a node known to have room, reporting
// whether a new key was created.
func (t *btree) insertNonFull(n *node, k string, val any) bool {
	for {
		i, ok := n.find(k)
		if ok {
			n.items[i].val = val
			return false
		}
		if n.leaf() {
			n.items = append(n.items, item{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item{key: k, val: val}
			return true
		}
		if len(n.children[i].items) == 2*degree-1 {
			n.splitChild(i)
			if k == n.items[i].key {
				n.items[i].val = val
				return false
			}
			if k > n.items[i].key {
				i++
			}
		}
		n = n.children[i]
	}
}

// splitChild splits the full child at index i, lifting its median item
// into n.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := degree - 1
	median := child.items[mid]
	right := &node{items: append([]item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]
	n.items = append(n.items, item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key k, reporting whether it was present. Deletion uses
// the standard CLRS algorithm (merge/rotate on the way down).
func (t *btree) Delete(k string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.delete(t.root, k) {
		return false
	}
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	t.size--
	return true
}

func (t *btree) delete(n *node, k string) bool {
	i, ok := n.find(k)
	if n.leaf() {
		if !ok {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if ok {
		// Replace with predecessor or successor, or merge.
		if len(n.children[i].items) >= degree {
			pred := n.children[i].max()
			n.items[i] = pred
			return t.delete(n.children[i], pred.key)
		}
		if len(n.children[i+1].items) >= degree {
			succ := n.children[i+1].min()
			n.items[i] = succ
			return t.delete(n.children[i+1], succ.key)
		}
		n.merge(i)
		return t.delete(n.children[i], k)
	}
	// Descend, topping up the child if it is minimal.
	if len(n.children[i].items) < degree {
		i = n.fill(i)
	}
	return t.delete(n.children[i], k)
}

func (n *node) min() item {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (n *node) max() item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// fill ensures child i has at least degree items, borrowing from a
// sibling or merging; it returns the (possibly shifted) child index to
// descend into.
func (n *node) fill(i int) int {
	switch {
	case i > 0 && len(n.children[i-1].items) >= degree:
		n.borrowLeft(i)
	case i < len(n.children)-1 && len(n.children[i+1].items) >= degree:
		n.borrowRight(i)
	case i < len(n.children)-1:
		n.merge(i)
	default:
		n.merge(i - 1)
		i--
	}
	return i
}

func (n *node) borrowLeft(i int) {
	child, left := n.children[i], n.children[i-1]
	child.items = append([]item{n.items[i-1]}, child.items...)
	n.items[i-1] = left.items[len(left.items)-1]
	left.items = left.items[:len(left.items)-1]
	if !left.leaf() {
		child.children = append([]*node{left.children[len(left.children)-1]}, child.children...)
		left.children = left.children[:len(left.children)-1]
	}
}

func (n *node) borrowRight(i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	n.items[i] = right.items[0]
	right.items = right.items[1:]
	if !right.leaf() {
		child.children = append(child.children, right.children[0])
		right.children = right.children[1:]
	}
}

// merge folds child i+1 and the separator into child i.
func (n *node) merge(i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	child.children = append(child.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// AscendRange calls fn for every key in [lo, hi) in order; an empty hi
// means unbounded. fn returning false stops the walk. The shared lock
// is held for the whole walk; fn must not mutate the tree.
func (t *btree) AscendRange(lo, hi string, fn func(k string, v any) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.root.ascend(lo, hi, fn)
}

func (n *node) ascend(lo, hi string, fn func(string, any) bool) bool {
	i, _ := n.find(lo)
	for ; i < len(n.items); i++ {
		if !n.leaf() && !n.children[i].ascend(lo, hi, fn) {
			return false
		}
		it := n.items[i]
		if hi != "" && it.key >= hi {
			return false
		}
		if it.key >= lo && !fn(it.key, it.val) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(lo, hi, fn)
	}
	return true
}

// Ascend walks all keys in order under the shared lock.
func (t *btree) Ascend(fn func(k string, v any) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.root.ascend("", "", fn)
}

// DescendRange calls fn for every key in [lo, hi) in DESCENDING order;
// an empty hi means unbounded above. fn returning false stops the
// walk. The shared lock is held for the whole walk; fn must not mutate
// the tree. This is what lets a descending ranked scan serve pages
// from the top of a partition without materializing it first.
func (t *btree) DescendRange(lo, hi string, fn func(k string, v any) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.root.descend(lo, hi, fn)
}

func (n *node) descend(lo, hi string, fn func(string, any) bool) bool {
	// children[i] holds the keys between items[i-1] and items[i], so
	// starting at the first item >= hi visits exactly the keys < hi.
	i := len(n.items)
	if hi != "" {
		i, _ = n.find(hi)
	}
	if !n.leaf() && !n.children[i].descend(lo, hi, fn) {
		return false
	}
	for j := i - 1; j >= 0; j-- {
		it := n.items[j]
		if it.key < lo {
			return false
		}
		if !fn(it.key, it.val) {
			return false
		}
		if !n.leaf() && !n.children[j].descend(lo, hi, fn) {
			return false
		}
	}
	return true
}
