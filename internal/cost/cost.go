// Package cost implements UniStore's cost model (companion paper [5],
// "Cost-Aware Processing of Similarity Queries in Structured Overlays"):
// per-operator message, hop and latency estimates derived from the
// overlay's guarantees (prefix routing resolves a key in ≈log₂ P hops
// for P partitions) and from data statistics. The optimizer compares
// physical alternatives with these estimates, and every peer hosting a
// mutant query plan re-evaluates them with its own view — the paper's
// adaptive query processing.
package cost

import (
	"math"
	"time"
)

// Stats is the statistics snapshot cost formulas consume. Peers
// estimate Partitions from their own trie depth (2^len(path)); data
// statistics come from probe queries or are maintained by the harness.
type Stats struct {
	// Partitions is the estimated number of key-space partitions.
	Partitions int
	// Replicas is the replica-group size per partition.
	Replicas int
	// TriplesPerAttr estimates how many triples an attribute has
	// (universal-relation column cardinality).
	TriplesPerAttr map[string]int
	// DefaultAttrCount is used for attributes with no recorded count.
	DefaultAttrCount int
	// TotalTriples is the estimated corpus size.
	TotalTriples int
	// AvgLatency is the expected one-hop delay of the network.
	AvgLatency time.Duration
	// CacheHitRate is the observed fraction of probes resolved through
	// the peers' routing caches (a cache hit reaches the responsible
	// peer in one hop instead of log₂ P). The harness refreshes it from
	// aggregate peer counters; 0 prices every probe cold.
	CacheHitRate float64
	// ReadReplicas is the number of replicas the read path spreads
	// probes and page pulls over (power-of-two-choices). R replicas
	// answering reads multiply a partition's effective service rate by
	// R, which shrinks the queueing component of per-partition latency
	// on hot shards by the same factor. 0 or 1 prices the single-owner
	// path.
	ReadReplicas int
	// RetryRate is the observed fraction of direct probe groups that
	// had to be hedged or retried to a sibling replica (dead or slow
	// owner). Each retry costs one extra request/response pair and
	// roughly a hedge deadline of added latency; the harness refreshes
	// it from aggregate peer counters.
	RetryRate float64
	// ProbeRTT is the observed round trip of direct (cache-hit) probes:
	// the mean of the per-replica latency EWMAs the routing caches
	// maintain. It makes cached-probe pricing latency-profile-aware —
	// a WAN overlay's direct probes cost what its links actually
	// measure, not a synthetic two-hop guess. 0 falls back to
	// 2×AvgLatency.
	ProbeRTT time.Duration
	// PageSize is the peer-side range-scan page bound in entries
	// (0 = paging off). Paged scans trade extra pull round trips on
	// exhaustive results for bounded response sizes — and for a
	// per-tuple remainder a LIMIT/top-k early-out can skip.
	PageSize int
	// Pressure is the observed flow-control stall rate: the fraction
	// of credit-gated bulk sends that had to wait for receiver credit
	// (aggregate FlowStalls / FlowBulkSends over the peers). A
	// congested replica set serves slower in exactly the way a slow
	// one does, so the serving term of range latencies inflates by
	// (1 + Pressure) — the optimizer prices a backed-up partition like
	// a distant one and steers toward plans that touch it less. The
	// harness refreshes it from aggregate peer counters; 0 prices an
	// uncongested network.
	Pressure float64
}

// DefaultStats returns a conservative snapshot for a network with the
// given partition count.
func DefaultStats(partitions int) *Stats {
	return &Stats{
		Partitions:       max(partitions, 1),
		Replicas:         1,
		ReadReplicas:     1,
		TriplesPerAttr:   make(map[string]int),
		DefaultAttrCount: 1000,
		TotalTriples:     10000,
		AvgLatency:       50 * time.Millisecond,
	}
}

// AttrCount returns the estimated triple count for an attribute.
func (s *Stats) AttrCount(attr string) int {
	if c, ok := s.TriplesPerAttr[attr]; ok {
		return c
	}
	return s.DefaultAttrCount
}

// LookupHops is the expected routing distance to one key: log₂ P.
func (s *Stats) LookupHops() float64 {
	if s.Partitions <= 1 {
		return 0
	}
	return math.Log2(float64(s.Partitions))
}

// hitRate clamps the observed routing-cache hit rate to [0, 1].
func (s *Stats) hitRate() float64 {
	return math.Min(math.Max(s.CacheHitRate, 0), 1)
}

// retryRate clamps the observed probe-retry rate to [0, 1].
func (s *Stats) retryRate() float64 {
	return math.Min(math.Max(s.RetryRate, 0), 1)
}

// replicaSpread is the effective service-rate multiplier of the
// replica-aware read path: R live replicas answering probes under
// power-of-two-choices balance serve a hot partition ~R× faster than a
// single owner, so the serving component of per-partition latency
// divides by it.
func (s *Stats) replicaSpread() float64 {
	if s.ReadReplicas <= 1 {
		return 1
	}
	return float64(s.ReadReplicas)
}

// retryMsgs is the expected extra messages of `groups` direct probe
// groups under the observed retry rate: each retried group resends one
// request and draws one more response.
func (s *Stats) retryMsgs(groups float64) float64 {
	return s.retryRate() * 2 * groups
}

// retryLatency is the expected added latency of a (possibly) hedged
// probe: with probability RetryRate the origin waits out the hedge
// deadline (priced at two hops of average latency) before the sibling
// replica answers.
func (s *Stats) retryLatency() time.Duration {
	return time.Duration(s.retryRate() * 2 * float64(s.AvgLatency))
}

// pressureFactor is the serving-rate inflation of observed
// backpressure, clamped so a transiently saturated window (Pressure
// near 1) at most doubles the serving term.
func (s *Stats) pressureFactor() float64 {
	return 1 + math.Min(math.Max(s.Pressure, 0), 1)
}

// cachedRTT is the expected round trip of a cache-hit probe: the
// observed per-replica EWMA mean when the harness surfaced one, a
// two-hop synthetic otherwise.
func (s *Stats) cachedRTT() time.Duration {
	if s.ProbeRTT > 0 {
		return s.ProbeRTT
	}
	return s.lat(2)
}

// EffectiveLookupHops is the expected routing distance to one key
// given the routing cache: a cached probe goes direct (1 hop), a cold
// one pays the full prefix-routing descent.
func (s *Stats) EffectiveLookupHops() float64 {
	h := s.LookupHops()
	if h <= 1 {
		return h
	}
	r := s.hitRate()
	return r*1 + (1-r)*h
}

// PartitionsForFraction estimates how many partitions a key range
// covering `fraction` of an attribute's region touches. At least one
// partition always answers.
func (s *Stats) PartitionsForFraction(fraction float64) float64 {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	p := fraction * float64(s.Partitions)
	if p < 1 {
		p = 1
	}
	return p
}

// Estimate is a predicted operator cost. Messages is the network load
// measure the optimizer minimizes by default; Latency is the predicted
// wall-clock (simulated) time assuming parallel branches overlap.
//
// The streaming executor additionally splits each cost into a startup
// part (paid before the first tuple can possibly arrive — routing
// descent, q-gram fan-out) and a per-tuple remainder that a LIMIT/top-k
// early-out can avoid. StartupMessages/FirstLatency capture the startup
// part; ScaledToLimit prices the operator as the streaming executor
// will actually run it under a limit.
type Estimate struct {
	Messages float64
	// StartupMessages is the message cost paid before the first result
	// can arrive; the part of Messages early termination cannot avoid.
	StartupMessages float64
	Latency         time.Duration
	// FirstLatency is the estimated time-to-first-result.
	FirstLatency time.Duration
	// Results is the estimated number of bindings produced.
	Results float64
}

// Plus composes sequential costs: the downstream operator cannot start
// until the upstream one finishes, so the upstream's FULL cost joins
// the downstream's startup in both the message and latency floors.
func (e Estimate) Plus(o Estimate) Estimate {
	return Estimate{
		Messages:        e.Messages + o.Messages,
		StartupMessages: e.Messages + o.StartupMessages,
		Latency:         e.Latency + o.Latency,
		FirstLatency:    e.Latency + o.FirstLatency,
		Results:         o.Results, // sequential composition: downstream wins
	}
}

// ScaledToLimit reprices the operator for a streaming execution that
// stops after k results: the startup cost is paid in full, the
// remainder shrinks to the fraction of the result stream actually
// consumed. With k >= Results (or k <= 0) the estimate is unchanged.
func (e Estimate) ScaledToLimit(k int) Estimate {
	if k <= 0 || float64(k) >= e.Results {
		return e
	}
	frac := float64(k) / math.Max(e.Results, 1)
	out := e
	out.Messages = e.StartupMessages + frac*(e.Messages-e.StartupMessages)
	out.Latency = e.FirstLatency + time.Duration(frac*float64(e.Latency-e.FirstLatency))
	out.Results = float64(k)
	return out
}

// lat scales the average latency by a hop count.
func (s *Stats) lat(hops float64) time.Duration {
	return time.Duration(hops * float64(s.AvgLatency))
}

// Lookup estimates one exact-key lookup: route + direct response,
// with the routing descent shortened by the expected cache hit rate
// and the cached fraction priced at the OBSERVED direct-probe round
// trip (per-replica EWMAs) plus the expected retry overhead. A lookup
// is all startup — nothing can be skipped by stopping early.
func (s *Stats) Lookup(expectedResults float64) Estimate {
	h := s.EffectiveLookupHops()
	cold := s.LookupHops()
	r := s.hitRate()
	msgs := h + 1 + r*s.retryMsgs(1)
	lat := time.Duration((1-r)*float64(s.lat(cold+1))) +
		time.Duration(r*float64(s.cachedRTT())) +
		time.Duration(r*float64(s.retryLatency()))
	return Estimate{
		Messages:        msgs,
		StartupMessages: msgs,
		Latency:         lat,
		FirstLatency:    lat,
		Results:         expectedResults,
	}
}

// MultiLookup estimates k probes of a DHT index join. Cold probes pay
// one routed envelope plus a response each. Cache-resolved probes are
// batched: keys sharing a cached responsible peer travel in one
// multi-lookup request answered by one batched response, so the cached
// fraction costs ~2·(distinct peers touched) messages — the
// balls-in-bins expectation over the partitions — rather than 2k. The
// first probe's round trip is the startup; the rest stream and can be
// skipped under a limit.
func (s *Stats) MultiLookup(k int, expectedResults float64) Estimate {
	h := s.LookupHops()
	r := s.hitRate()
	p := float64(max(s.Partitions, 1))
	peers := p * (1 - math.Pow(1-1/p, float64(k)))
	peers = math.Min(math.Max(peers, 1), float64(k))
	cold := float64(k) * (h + 1)
	batched := 2*peers + s.retryMsgs(peers) // hedged groups resend+answer
	startup := (1-r)*(h+1) + r*2
	startupLat := time.Duration((1-r)*float64(s.lat(h+1))) +
		time.Duration(r*float64(s.cachedRTT()))
	return Estimate{
		Messages:        (1-r)*cold + r*batched,
		StartupMessages: startup,
		Latency:         startupLat + time.Duration(r*float64(s.retryLatency())),
		FirstLatency:    startupLat,
		Results:         expectedResults,
	}
}

// pagePulls estimates the extra pull round trips (request + response
// message pairs, total across partitions) a paged scan adds when the
// expected rows per partition exceed the page size. Zero when paging
// is off — the monolithic-response behaviour.
func (s *Stats) pagePulls(partitions, expectedResults float64) float64 {
	if s.PageSize <= 0 || partitions <= 0 || expectedResults <= 0 {
		return 0
	}
	perPart := expectedResults / partitions
	extra := math.Ceil(perPart/float64(s.PageSize)) - 1
	if extra < 0 {
		extra = 0
	}
	return partitions * extra
}

// Range estimates a shower range query covering `fraction` of an
// attribute region: routing to the region plus one message per covered
// partition and one response per partition — plus, with peer-side
// paging on, 2 messages per continuation pull. The descent plus the
// first partition's first page is the startup; the per-partition (and
// per-page) remainder streams and shrinks under a limit, which is
// exactly why paging keeps limit-aware pricing honest: an early-out
// skips whole pages, not just whole partitions.
//
// The replica read path shows up twice: the serving term of the
// latency divides by replicaSpread (R replicas answering page pulls
// and re-showered branches multiply a hot partition's effective
// service rate by R), and the observed retry rate adds the expected
// re-shower traffic of partitions whose server died mid-scan.
func (s *Stats) Range(fraction float64, expectedResults float64) Estimate {
	h := s.LookupHops()
	p := s.PartitionsForFraction(fraction)
	pulls := s.pagePulls(p, expectedResults)
	serve := (1 + 2*pulls/math.Max(p, 1)) * s.pressureFactor() / s.replicaSpread()
	return Estimate{
		Messages:        h + (p - 1) + p + 2*pulls + s.retryMsgs(p), // descent + fan-out + responses + pulls + re-showers
		StartupMessages: h + 1,
		Latency:         s.lat(h + math.Log2(p+1) + serve),
		FirstLatency:    s.lat(h + 1),
		Results:         expectedResults,
	}
}

// GroupShare is the default ratio of distinct groups to input rows
// used when no group-cardinality statistic exists — the System-R-style
// constant behind pushdown-vs-centralized pricing.
const GroupShare = 0.1

// AggRange prices a peer-side aggregated range scan: the same descent
// and shower fan-out as Range, but every response carries per-group
// partial states instead of rows, so the paged remainder scales with
// groups shipped — each partition ships at most min(groups, its rows)
// states, and page pulls amortize over that. Aggregation is blocking
// (no group is final before every partition answered), so the whole
// cost is startup: a streamable LIMIT discounts nothing, which is
// exactly what steers small-limit group-key orderings back to the
// centralized row stream.
func (s *Stats) AggRange(fraction, expectedRows, expectedGroups float64) Estimate {
	h := s.LookupHops()
	p := s.PartitionsForFraction(fraction)
	if expectedGroups < 1 {
		expectedGroups = 1
	}
	perPart := expectedRows / math.Max(p, 1)
	shipped := p * math.Min(expectedGroups, math.Max(perPart, 1))
	pulls := s.pagePulls(p, shipped)
	serve := (1 + 2*pulls/math.Max(p, 1)) * s.pressureFactor() / s.replicaSpread()
	msgs := h + (p - 1) + p + 2*pulls + s.retryMsgs(p)
	lat := s.lat(h + math.Log2(p+1) + serve)
	return Estimate{
		Messages:        msgs,
		StartupMessages: msgs,
		Latency:         lat,
		FirstLatency:    lat,
		Results:         expectedGroups,
	}
}

// Broadcast estimates a full-network scan: every partition receives the
// query and responds (in pages, when paging is on).
func (s *Stats) Broadcast(expectedResults float64) Estimate {
	p := float64(s.Partitions)
	pulls := s.pagePulls(p, expectedResults)
	serve := (1 + 2*pulls/math.Max(p, 1)) * s.pressureFactor() / s.replicaSpread()
	return Estimate{
		Messages:        2*p - 1 + 2*pulls + s.retryMsgs(p),
		StartupMessages: math.Log2(p+1) + 1,
		Latency:         s.lat(math.Log2(p+1) + serve),
		FirstLatency:    s.lat(2),
		Results:         expectedResults,
	}
}

// QGramSearch estimates the q-gram access path for edist(v, c) <= k:
// one range query per gram of the target plus one verification lookup
// per expected candidate. The whole gram phase is startup — the count
// filter needs every gram's postings before the first candidate can be
// verified — which is why a LIMIT query may prefer the plain range
// scan even where the q-gram index wins on total messages.
func (s *Stats) QGramSearch(targetLen, q, k int, candidates float64) Estimate {
	grams := float64(targetLen + q - 1)
	perGram := s.Range(1.0/float64(max(s.Partitions, 1)), 0)
	total := Estimate{
		Messages: grams * perGram.Messages,
		Latency:  perGram.Latency, // grams in parallel
	}
	probe := s.MultiLookup(int(candidates)+1, candidates)
	total.StartupMessages = total.Messages + probe.StartupMessages
	total.Messages += probe.Messages
	total.FirstLatency = total.Latency + probe.FirstLatency
	total.Latency += probe.Latency
	total.Results = candidates
	return total
}

// Ship estimates migrating a mutant plan with `bindings` intermediate
// results to the next region: one routed payload carrying the state.
func (s *Stats) Ship(bindings float64) Estimate {
	h := s.LookupHops()
	return Estimate{
		Messages:        h,
		StartupMessages: h,
		Latency:         s.lat(h),
		FirstLatency:    s.lat(h),
		Results:         bindings,
	}
}

// Selectivity heuristics for the optimizer, mirroring classic System-R
// constants adapted to the triple model.
const (
	// EqSelectivity is the fraction of an attribute's triples matching
	// an equality on its value.
	EqSelectivity = 0.01
	// RangeSelectivity is the default fraction for one-sided ranges.
	RangeSelectivity = 0.3
)

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
