package cost

import (
	"math"
	"testing"
	"time"
)

func TestLookupHopsLogarithmic(t *testing.T) {
	s := DefaultStats(1024)
	if got := s.LookupHops(); math.Abs(got-10) > 1e-9 {
		t.Errorf("log2(1024) = %v", got)
	}
	if DefaultStats(1).LookupHops() != 0 {
		t.Error("single partition routes in zero hops")
	}
}

func TestEstimatesScale(t *testing.T) {
	small, big := DefaultStats(16), DefaultStats(1024)
	if small.Lookup(1).Messages >= big.Lookup(1).Messages {
		t.Error("lookup cost must grow with network size")
	}
	// Broadcast is linear, lookup logarithmic: the gap must widen.
	gapSmall := small.Broadcast(0).Messages / small.Lookup(1).Messages
	gapBig := big.Broadcast(0).Messages / big.Lookup(1).Messages
	if gapBig <= gapSmall {
		t.Errorf("broadcast/lookup gap must widen: %v vs %v", gapSmall, gapBig)
	}
}

func TestRangeBetweenLookupAndBroadcast(t *testing.T) {
	s := DefaultStats(256)
	lk := s.Lookup(1).Messages
	rg := s.Range(0.1, 100).Messages
	bc := s.Broadcast(1000).Messages
	if !(lk < rg && rg < bc) {
		t.Errorf("expected lookup(%v) < range(%v) < broadcast(%v)", lk, rg, bc)
	}
}

func TestRangeFractionClamped(t *testing.T) {
	s := DefaultStats(64)
	if s.PartitionsForFraction(-1) != 1 || s.PartitionsForFraction(0) != 1 {
		t.Error("at least one partition answers any range")
	}
	if s.PartitionsForFraction(2) != 64 {
		t.Error("fraction must clamp to 1")
	}
}

func TestMultiLookupParallelLatency(t *testing.T) {
	s := DefaultStats(256)
	one := s.Lookup(1)
	many := s.MultiLookup(10, 10)
	if many.Latency != one.Latency {
		t.Error("parallel probes share latency")
	}
	if many.Messages != 10*one.Messages {
		t.Error("parallel probes multiply messages")
	}
}

func TestQGramCheaperThanBroadcastOnBigNetworks(t *testing.T) {
	s := DefaultStats(512)
	qg := s.QGramSearch(4, 3, 2, 10)
	bc := s.Broadcast(10)
	if qg.Messages >= bc.Messages {
		t.Errorf("q-gram (%v msgs) must beat broadcast (%v msgs) at 512 partitions",
			qg.Messages, bc.Messages)
	}
}

func TestPlusComposition(t *testing.T) {
	a := Estimate{Messages: 5, Latency: time.Second, Results: 100}
	b := Estimate{Messages: 7, Latency: 2 * time.Second, Results: 3}
	c := a.Plus(b)
	if c.Messages != 12 || c.Latency != 3*time.Second || c.Results != 3 {
		t.Errorf("Plus = %+v", c)
	}
}

func TestAttrCountFallback(t *testing.T) {
	s := DefaultStats(8)
	s.TriplesPerAttr["name"] = 42
	if s.AttrCount("name") != 42 || s.AttrCount("unknown") != s.DefaultAttrCount {
		t.Error("attribute count lookup")
	}
}

func TestShipCost(t *testing.T) {
	s := DefaultStats(256)
	if s.Ship(100).Messages != s.LookupHops() {
		t.Error("shipping a plan costs one routed payload")
	}
}

// TestProbeRTTLatencyAware: cached-probe pricing must track the
// observed per-replica round trip — a slow profile raises lookup
// latency estimates, a fast one lowers them, and messages stay put.
func TestProbeRTTLatencyAware(t *testing.T) {
	base := DefaultStats(64)
	base.CacheHitRate = 1 // price the cached path only
	def := base.Lookup(1)

	slow := *base
	slow.ProbeRTT = 10 * base.AvgLatency
	fast := *base
	fast.ProbeRTT = base.AvgLatency / 10

	if got := slow.Lookup(1); got.Latency <= def.Latency {
		t.Errorf("slow observed RTT did not raise the estimate: %v <= %v", got.Latency, def.Latency)
	} else if got.Messages != def.Messages {
		t.Errorf("ProbeRTT changed message estimate: %v vs %v", got.Messages, def.Messages)
	}
	if got := fast.Lookup(1); got.Latency >= def.Latency {
		t.Errorf("fast observed RTT did not lower the estimate: %v >= %v", got.Latency, def.Latency)
	}
	// With no observations the default two-hop synthetic applies.
	if base.cachedRTT() != base.lat(2) {
		t.Errorf("default cached RTT = %v, want %v", base.cachedRTT(), base.lat(2))
	}
	// MultiLookup's first-result latency moves the same way.
	if s, f := slow.MultiLookup(8, 8), fast.MultiLookup(8, 8); s.FirstLatency <= f.FirstLatency {
		t.Errorf("MultiLookup first latency ignores RTT: slow %v vs fast %v", s.FirstLatency, f.FirstLatency)
	}
}
