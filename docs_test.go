// Documentation checks: every intra-repo markdown link must resolve.
// CI's docs job runs this alongside go vet and gofmt, so the docs tree
// cannot rot silently as files move.
package unistore_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target); images share the syntax.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// generatedDocs are imported research material (paper abstracts,
// retrieval notes) whose links point at artifacts outside this repo;
// only the maintained documentation is link-checked.
var generatedDocs = map[string]bool{
	"PAPER.md":    true,
	"PAPERS.md":   true,
	"SNIPPETS.md": true,
	"ISSUE.md":    true,
}

func TestDocsIntraRepoLinksResolve(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") && !generatedDocs[path] {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found")
	}
	checked := 0
	for _, file := range mdFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue // external or in-page
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", file, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no intra-repo links checked; the docs tree should cross-reference itself")
	}
	t.Logf("checked %d intra-repo links across %d markdown files", checked, len(mdFiles))
}

// TestDocsTreeExists pins the documentation the README promises.
func TestDocsTreeExists(t *testing.T) {
	for _, f := range []string{"docs/architecture.md", "docs/vql.md", "README.md"} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, link := range []string{"docs/architecture.md", "docs/vql.md"} {
		if !strings.Contains(string(readme), link) {
			t.Errorf("README.md does not link %s", link)
		}
	}
}
