// Tracing-overhead guard: tracing piggybacks spans on messages the
// protocol sends anyway, so a traced run must send EXACTLY as many
// messages as an untraced one, and the extra bytes (trace contexts on
// requests, span riders on responses) must stay a bounded fraction of
// the untraced payload. The benchmark pair measures the wall-clock
// cost of tracing on the warm index-join path.
package unistore_test

import (
	"testing"

	"unistore"
	"unistore/internal/benchscen"
	"unistore/internal/keys"
	"unistore/internal/triple"
	"unistore/internal/workload"
)

// tracedTopK mirrors benchscen.TopK with tracing switchable: the same
// deterministic 64-peer ranked top-5 scenario both overhead numbers
// come from.
func tracedTopK(tracing bool) *unistore.Cluster {
	c := unistore.New(unistore.Config{
		Peers: 64, Seed: 12, RangeShards: 8, ProbeParallelism: 2,
		Tracing: tracing,
	})
	ds := workload.Generate(workload.Options{Seed: 13, Persons: 300})
	c.BulkInsert(ds.Triples...)
	c.Net().Settle()
	return c
}

// tracedIndexJoin mirrors benchscen.IndexJoin(false) with tracing
// switchable — the warm-cache DHT index-join path.
func tracedIndexJoin(tracing bool) *unistore.Cluster {
	ds := workload.Generate(workload.Options{Seed: 9, Persons: 60})
	var samples []keys.Key
	for _, tr := range ds.Triples {
		for _, kind := range triple.AllIndexKinds {
			samples = append(samples, triple.IndexKey(tr, kind))
		}
	}
	c := unistore.New(unistore.Config{
		Peers: 64, Seed: 8, AdaptiveSamples: samples, Tracing: tracing,
	})
	c.BulkInsert(ds.Triples...)
	c.Net().Settle()
	return c
}

// traceOverheadFraction bounds the traced run's extra bytes relative
// to the untraced payload. Measured: ~31% on the ranked top-5 (riders
// are large relative to this scenario's small pages); the guard fails
// if piggyback encoding bloats past 45%.
const traceOverheadFraction = 0.45

func TestTracingZeroExtraMessagesBoundedBytes(t *testing.T) {
	type cost struct{ msgs, bytes int }
	run := func(tracing bool) cost {
		c := tracedTopK(tracing)
		before := c.Net().Stats()
		res, err := c.QueryFrom(0, benchscen.TopKQuery)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Bindings) != 5 {
			t.Fatalf("top-5 returned %d rows", len(res.Bindings))
		}
		if tracing && res.Trace == nil {
			t.Fatal("tracing run returned no trace")
		}
		c.Net().Settle()
		after := c.Net().Stats()
		return cost{after.MessagesSent - before.MessagesSent, after.BytesSent - before.BytesSent}
	}
	plain := run(false)
	traced := run(true)
	if traced.msgs != plain.msgs {
		t.Errorf("tracing changed the message count: %d untraced, %d traced — piggyback only, never extra messages",
			plain.msgs, traced.msgs)
	}
	extra := traced.bytes - plain.bytes
	if extra <= 0 {
		t.Errorf("traced run added no bytes (%d vs %d) — riders are not traveling", plain.bytes, traced.bytes)
	}
	if float64(extra) > traceOverheadFraction*float64(plain.bytes) {
		t.Errorf("trace piggyback added %d bytes on a %d-byte query (%.0f%%), bound %.0f%%",
			extra, plain.bytes, 100*float64(extra)/float64(plain.bytes), 100*traceOverheadFraction)
	}
}

func benchIndexJoinTracing(b *testing.B, tracing bool) {
	c := tracedIndexJoin(tracing)
	plan, err := benchscen.IndexJoinPlan()
	if err != nil {
		b.Fatal(err)
	}
	c.Engine(0).RunPlan(plan) // warm the route cache
	c.Net().Settle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs, _ := c.Engine(0).RunPlan(plan)
		if len(bs) == 0 {
			b.Fatal("join returned nothing")
		}
	}
}

func BenchmarkIndexJoinTracingOff(b *testing.B) { benchIndexJoinTracing(b, false) }
func BenchmarkIndexJoinTracingOn(b *testing.B)  { benchIndexJoinTracing(b, true) }
