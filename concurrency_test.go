// Concurrent-execution tests: many goroutines querying one cluster in
// the simulator's concurrent mode, the parallel bulk-insert path, and
// equivalence of both against the deterministic reference. CI runs
// this package under -race, which is what makes the thread-safety
// claims of the concurrency layer enforceable.
package unistore_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"unistore"
	"unistore/internal/workload"
)

// queryRows runs a query and returns its rows rendered and sorted, so
// result sets compare independently of binding order.
func queryRows(t *testing.T, c *unistore.Cluster, peer int, q string) []string {
	t.Helper()
	res, err := c.QueryFrom(peer, q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	var rows []string
	for _, row := range res.Rows() {
		rows = append(rows, fmt.Sprint(row))
	}
	sort.Strings(rows)
	return rows
}

var concurrencyQueries = []string{
	`SELECT ?p WHERE {(?p,'email','p7@example.org')}`,
	`SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a < 30}`,
	`SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 10`,
	`SELECT ?n,?c WHERE {(?p,'name',?n) (?p,'num_of_pubs',?c) FILTER ?c >= 5}`,
}

// TestConcurrentQueriesMatchDeterministic loads the same dataset into
// a deterministic and a concurrent cluster and checks every query
// yields identical result sets, with the concurrent cluster serving
// many goroutines at once — several of them hammering the same engine.
func TestConcurrentQueriesMatchDeterministic(t *testing.T) {
	ds := workload.Generate(workload.Options{Seed: 3, Persons: 60})

	ref := unistore.New(unistore.Config{Peers: 32, Seed: 9})
	ref.Insert(ds.Triples...)
	want := make(map[string][]string)
	for _, q := range concurrencyQueries {
		want[q] = queryRows(t, ref, 0, q)
	}

	c := unistore.New(unistore.Config{Peers: 32, Seed: 9, Concurrent: true})
	defer c.Close()
	c.BulkInsert(ds.Triples...)

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*len(concurrencyQueries))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for qi, q := range concurrencyQueries {
					// Half the goroutines share engine 0 (contended
					// single-engine path), the rest spread out.
					peer := 0
					if g%2 == 1 {
						peer = (g*rounds + r + qi) % c.Size()
					}
					res, err := c.QueryFrom(peer, q)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: %v", g, err)
						return
					}
					var rows []string
					for _, row := range res.Rows() {
						rows = append(rows, fmt.Sprint(row))
					}
					sort.Strings(rows)
					if fmt.Sprint(rows) != fmt.Sprint(want[q]) {
						errs <- fmt.Errorf("goroutine %d query %q: got %v want %v", g, q, rows, want[q])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBulkInsertEquivalence checks the parallel bulk path stores
// exactly what sequential Insert stores.
func TestBulkInsertEquivalence(t *testing.T) {
	ds := workload.Generate(workload.Options{Seed: 5, Persons: 40})
	q := `SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)}`

	seq := unistore.New(unistore.Config{Peers: 16, Seed: 2})
	seq.Insert(ds.Triples...)
	want := queryRows(t, seq, 0, q)

	bulk := unistore.New(unistore.Config{Peers: 16, Seed: 2})
	bulk.BulkInsert(ds.Triples...)
	if got := queryRows(t, bulk, 0, q); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("deterministic bulk insert diverged:\ngot  %v\nwant %v", got, want)
	}

	conc := unistore.New(unistore.Config{Peers: 16, Seed: 2, Concurrent: true})
	defer conc.Close()
	conc.BulkInsert(ds.Triples...)
	if got := queryRows(t, conc, 0, q); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("concurrent bulk insert diverged:\ngot  %v\nwant %v", got, want)
	}
}

// TestConcurrentBulkInsertFromManyGoroutines overlaps several
// BulkInsert calls (disjoint OID spaces) and verifies nothing is lost.
func TestConcurrentBulkInsertFromManyGoroutines(t *testing.T) {
	c := unistore.New(unistore.Config{Peers: 16, Seed: 4, Concurrent: true})
	defer c.Close()

	const writers = 4
	const perWriter = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ts []unistore.Triple
			for i := 0; i < perWriter; i++ {
				oid := fmt.Sprintf("w%d-%d", w, i)
				ts = append(ts,
					unistore.T(oid, "name", fmt.Sprintf("person %d-%d", w, i)),
					unistore.TN(oid, "age", float64(20+i)))
			}
			c.BulkInsert(ts...)
		}(w)
	}
	wg.Wait()

	rows := queryRows(t, c, 0, `SELECT ?p,?n WHERE {(?p,'name',?n)}`)
	if len(rows) != writers*perWriter {
		t.Fatalf("got %d names after concurrent bulk inserts, want %d", len(rows), writers*perWriter)
	}
}

// TestConcurrentInsertDuringQueries overlaps ingest with querying:
// optimizer statistics are written by BulkInsert while query
// optimization reads them, which must be safe (it races fatally on the
// stats map if either side skips the stats lock).
func TestConcurrentInsertDuringQueries(t *testing.T) {
	c := unistore.New(unistore.Config{Peers: 16, Seed: 6, Concurrent: true})
	defer c.Close()
	ds := workload.Generate(workload.Options{Seed: 8, Persons: 30})
	c.BulkInsert(ds.Triples...)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			oid := fmt.Sprintf("late-%d", i)
			c.BulkInsert(
				unistore.T(oid, "name", fmt.Sprintf("late person %d", i)),
				unistore.TN(oid, "age", float64(30+i)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := c.QueryFrom(i%c.Size(), concurrencyQueries[i%len(concurrencyQueries)]); err != nil {
				t.Errorf("query during ingest: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	rows := queryRows(t, c, 0, `SELECT ?n WHERE {(?p,'name',?n)}`)
	if len(rows) != 30+20 {
		t.Fatalf("got %d names after overlapping ingest, want %d", len(rows), 50)
	}
}

// TestParallelismWindows checks the fan-out window settings (the
// sequential baseline and a small bounded pool) still produce the
// reference result set.
func TestParallelismWindows(t *testing.T) {
	ds := workload.Generate(workload.Options{Seed: 7, Persons: 50})
	q := concurrencyQueries[1]

	ref := unistore.New(unistore.Config{Peers: 32, Seed: 3})
	ref.Insert(ds.Triples...)
	want := queryRows(t, ref, 0, q)

	for _, par := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			c := unistore.New(unistore.Config{
				Peers: 32, Seed: 3,
				ProbeParallelism: par, RangeShards: shards,
			})
			c.Insert(ds.Triples...)
			if got := queryRows(t, c, 0, q); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("parallelism=%d shards=%d diverged:\ngot  %v\nwant %v", par, shards, got, want)
			}
		}
	}
}
