#!/usr/bin/env bash
# Observability smoke: boot a traced 3-process cluster on loopback TCP
# with -debug endpoints, drive a few writes and one ranked query
# through the line protocol, then curl the endpoints exactly as a
# monitoring stack would. Fails if any /healthz is not OK, if the core
# /metrics series a dashboard graphs are zero, if /trace/recent holds
# no assembled span tree, or if pprof does not answer.
#
# Run via `make obs-smoke` (CI's integration job does). Ports are
# fixed so the curl targets need no parsing; override with OBS_PORT.
set -euo pipefail

cd "$(dirname "$0")/.."

base=${OBS_PORT:-7741}
work=$(mktemp -d)
bin="$work/unistore"
go build -o "$bin" ./cmd/unistore

pids=()
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

# Every daemon keeps reading its stdin for the whole run (EOF is a
# graceful shutdown), so each gets a fifo held open on fds 3-5;
# commands for proc 0 go through fd 3.
for i in 0 1 2; do
    mkfifo "$work/in$i"
    seeds=()
    if [ "$i" -gt 0 ]; then seeds=(-seeds "127.0.0.1:$base"); fi
    "$bin" -listen "127.0.0.1:$((base + i))" -peers 8 -replicas 2 \
        -procs 3 -proc "$i" -seed 5 -page 8 -trace \
        -debug "127.0.0.1:$((base + 10 + i))" "${seeds[@]}" \
        <"$work/in$i" >"$work/out$i" 2>"$work/log$i" &
    pids+=($!)
    eval "exec $((3 + i))>\"$work/in$i\""
done

for i in 0 1 2; do
    for _ in $(seq 90); do
        grep -q '^READY ' "$work/out$i" 2>/dev/null && break
        sleep 1
    done
    grep -q '^READY ' "$work/out$i" || {
        echo "proc $i never became READY" >&2
        cat "$work/log$i" >&2
        exit 1
    }
done

# A handful of writes and a traced ranked query so the query-path
# series and the trace log are non-trivially populated.
for p in alice bob carol dave erin frank; do
    printf 'INSERT %s name %s\n' "$p" "$p" >&3
done
printf 'BARRIER\n' >&3
printf "QUERY SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5\n" >&3
for _ in $(seq 30); do
    grep -q '^OK 5$' "$work/out0" 2>/dev/null && break
    sleep 1
done
grep -q '^OK 5$' "$work/out0" || {
    echo "ranked query never answered; proc 0 output:" >&2
    cat "$work/out0" >&2
    exit 1
}

fail=0
for i in 0 1 2; do
    dbg="127.0.0.1:$((base + 10 + i))"
    health=$(curl -fsS "http://$dbg/healthz") || {
        echo "proc $i: /healthz unreachable" >&2
        fail=1
        continue
    }
    echo "$health" | grep -q '"ok":true' || {
        echo "proc $i: /healthz not ok: $health" >&2
        fail=1
    }
    metrics=$(curl -fsS "http://$dbg/metrics") || {
        echo "proc $i: /metrics unreachable" >&2
        fail=1
        continue
    }
    for series in unistore_net_frames_out unistore_net_bytes_out unistore_net_frames_in; do
        echo "$metrics" | awk -v s="$series" '$1 == s && $2 + 0 > 0 { found = 1 } END { exit !found }' || {
            echo "proc $i: $series is zero or missing" >&2
            fail=1
        }
    done
    curl -fsS -o /dev/null "http://$dbg/debug/pprof/cmdline" || {
        echo "proc $i: /debug/pprof/cmdline unreachable" >&2
        fail=1
    }
done

# The query's serving work lands wherever its partitions live: assert
# the range-served counter cluster-wide rather than per process.
total=0
for i in 0 1 2; do
    v=$(curl -fsS "http://127.0.0.1:$((base + 10 + i))/metrics" |
        awk '$1 == "unistore_pgrid_range_served" { print int($2) }')
    total=$((total + ${v:-0}))
done
if [ "$total" -eq 0 ]; then
    echo "no process served a range branch for the ranked query" >&2
    fail=1
fi

curl -fsS "http://127.0.0.1:$((base + 10))/trace/recent" | grep -q '"spans":\[{' || {
    echo "/trace/recent holds no assembled trace" >&2
    fail=1
}

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "obs-smoke: all debug endpoints healthy, core series live, trace assembled"
