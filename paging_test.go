// Peer-side paging tests at the public API: paged range scans must be
// invisible to results at any page size, and LIMIT/top-k early
// termination must stop pulling pages the moment the threshold stop
// fires — pages the tail no longer needs are never requested.
package unistore_test

import (
	"fmt"
	"sort"
	"testing"

	"unistore"
	"unistore/internal/pgrid"
)

// pagedCluster builds the deterministic 32-peer cluster the paging
// assertions run on.
func pagedCluster(seed int64, pageSize int) *unistore.Cluster {
	return unistore.New(unistore.Config{
		Peers: 32, Seed: seed,
		RangeShards:      4,
		ProbeParallelism: 2,
		PageSize:         pageSize,
	})
}

func sortedRows(res *unistore.Result) []string {
	var out []string
	for _, row := range res.Rows() {
		out = append(out, fmt.Sprint(row))
	}
	sort.Strings(out)
	return out
}

// TestPagedScanEquivalence: full scans and LIMIT queries must return
// identical bindings with PageSize ∈ {1, 3, ∞}.
func TestPagedScanEquivalence(t *testing.T) {
	const (
		fullQuery  = `SELECT ?n WHERE {(?p,'name',?n)}`
		limitQuery = `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 4`
	)
	var wantFull, wantLimit []string
	for i, ps := range []int{0, 1, 3} { // 0 first: the unpaged reference
		c := pagedCluster(71, ps)
		loadPersons(c, 72, 120)
		full, err := c.QueryFrom(0, fullQuery)
		if err != nil {
			t.Fatal(err)
		}
		c.Net().Settle()
		limited, err := c.QueryFrom(0, limitQuery)
		if err != nil {
			t.Fatal(err)
		}
		c.Net().Settle()
		gotFull, gotLimit := sortedRows(full), sortedRows(limited)
		if i == 0 {
			wantFull, wantLimit = gotFull, gotLimit
			if len(wantFull) == 0 || len(wantLimit) != 4 {
				t.Fatalf("reference results degenerate: %d full, %d limited", len(wantFull), len(wantLimit))
			}
			continue
		}
		if fmt.Sprint(gotFull) != fmt.Sprint(wantFull) {
			t.Errorf("PageSize=%d: full scan diverged (%d rows vs %d)", ps, len(gotFull), len(wantFull))
		}
		if fmt.Sprint(gotLimit) != fmt.Sprint(wantLimit) {
			t.Errorf("PageSize=%d: LIMIT query diverged: %v vs %v", ps, gotLimit, wantLimit)
		}
	}
}

// TestEarlyTerminationStopsPagePulls: with maximal paging, a top-k
// query must pull strictly fewer pages than the exhaustive scan of the
// same pattern — the threshold stop ends the pull loop, it does not
// merely discard rows.
func TestEarlyTerminationStopsPagePulls(t *testing.T) {
	c := pagedCluster(73, 1)
	loadPersons(c, 74, 120)

	pageMsgs := func(src string) (int, int) {
		before := c.Net().Stats()
		res, err := c.QueryFrom(0, src)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Bindings) == 0 {
			t.Fatalf("%q returned nothing", src)
		}
		c.Net().Settle()
		after := c.Net().Stats()
		return after.PerKind[pgrid.KindPage] - before.PerKind[pgrid.KindPage],
			after.MessagesSent - before.MessagesSent
	}

	fullPages, fullMsgs := pageMsgs(`SELECT ?n WHERE {(?p,'name',?n)}`)
	topkPages, topkMsgs := pageMsgs(`SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`)
	if fullPages == 0 {
		t.Fatal("exhaustive paged scan pulled no pages — paging is not engaged")
	}
	if topkPages >= fullPages {
		t.Errorf("top-5 pulled %d pages, full scan %d — the stop must end the pull loop", topkPages, fullPages)
	}
	if topkMsgs >= fullMsgs {
		t.Errorf("top-5 cost %d messages, full scan %d", topkMsgs, fullMsgs)
	}
	t.Logf("page pulls: top-5 %d vs full %d (messages %d vs %d)", topkPages, fullPages, topkMsgs, fullMsgs)
}

// TestPagedScanConcurrentMatchesDeterministic: paging must stay
// invisible when shard completions and page pulls race in concurrent
// mode (CI runs this under -race).
func TestPagedScanConcurrentMatchesDeterministic(t *testing.T) {
	const q = `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 6`

	ref := pagedCluster(75, 0)
	loadPersons(ref, 76, 80)
	want, err := ref.QueryFrom(0, q)
	if err != nil {
		t.Fatal(err)
	}

	c := unistore.New(unistore.Config{
		Peers: 32, Seed: 75,
		RangeShards: 4, ProbeParallelism: 2,
		PageSize:   2,
		Concurrent: true,
	})
	defer c.Close()
	loadPersons(c, 76, 80)
	got, err := c.QueryFrom(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Rows()) != fmt.Sprint(want.Rows()) {
		t.Fatalf("concurrent paged top-k diverged:\n got %v\nwant %v", got.Rows(), want.Rows())
	}
	c.Net().Quiesce()
	for i, p := range c.Peers() {
		if n := p.PendingOps(); n != 0 {
			t.Errorf("peer %d holds %d pending ops after paged queries", i, n)
		}
	}
}
