//go:build race

package unistore_test

// raceEnabled reports whether this test binary runs under the race
// detector. The scale equivalence matrix widens under -race (CI's race
// job), keeping the default tier-1 run fast.
const raceEnabled = true
