# Local targets mirroring .github/workflows/ci.yml, so `make <job>`
# reproduces exactly what CI runs.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench docs ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Rewrites files in place.
fmt:
	gofmt -w .

# The CI check: fails if any file needs formatting.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...
	$(GO) test -run NONE -bench 'TopK|TimeToFirstResult|IndexJoin|PagedScan' -benchtime 5x .

# Machine-readable benchmark record: msgs / sim-ms / ttfr-ms / bytes
# for the topk, index-join (baseline vs warm routing cache), paged
# full-scan, churn top-k (single-owner vs replica-balanced reads, 10%
# dead peers) and group-by aggregation (peer-side pushdown vs
# centralized fallback) scenarios. Fails if the fast path, the churn
# failover or the aggregation pushdown regresses (see cmd/benchjson).
# CI uploads the file as an artifact.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR5.json

# The docs job: broken intra-repo markdown links fail, sources stay
# vetted and formatted.
docs:
	$(GO) test -run 'TestDocs' -v .
	$(GO) vet ./...
	@$(MAKE) fmt-check

ci: fmt-check build vet test race bench docs
