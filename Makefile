# Local targets mirroring .github/workflows/ci.yml, so `make <job>`
# reproduces exactly what CI runs.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench docs ci \
	lint integration integration-race fuzz-smoke obs-smoke \
	bench-scale bench-scale-smoke bench-durability bench-flow

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Rewrites files in place.
fmt:
	gofmt -w .

# The CI check: fails if any file needs formatting.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...
	$(GO) test -run NONE -bench 'TopK|TimeToFirstResult|IndexJoin|PagedScan' -benchtime 5x .

# Machine-readable benchmark record: msgs / sim-ms / ttfr-ms / bytes
# for the topk, index-join (baseline vs warm routing cache), paged
# full-scan, churn top-k (single-owner vs replica-balanced reads, 10%
# dead peers) and group-by aggregation (peer-side pushdown vs
# centralized fallback) scenarios. Fails if the fast path, the churn
# failover or the aggregation pushdown regresses (see cmd/benchjson).
# CI uploads the file as an artifact.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR5.json

# The scale harness record: msgs-per-routed-lookup at 128..1024 peers
# with a log-linear fit (fails if the largest point exceeds 2x the
# log-extrapolation), Zipf hot-shard load spread with replica-balanced
# vs pinned reads, two-cluster WAN latency scenario, and a live
# join/split/merge churn run that must stay exact. CI runs the smoke
# variant on PRs and the full sweep nightly (see bench-scale in
# .github/workflows/ci.yml).
bench-scale:
	$(GO) run ./cmd/benchjson -scale -out BENCH_SCALE.json

bench-scale-smoke:
	$(GO) run ./cmd/benchjson -scale -sizes 128,256 -out BENCH_SCALE.json

# The durability record: one restart-rejoin run on a WAL-backed simnet
# peer — kill -9, recover, catch up by digest delta — against the
# empty-disk full-sync baseline. Fails if recovery loses an acked
# write, a rejoined replica misses exactness, or the delta catch-up
# stops being cheaper than full sync on messages or bytes. Simnet
# benches run fsync-off (see docs/architecture.md); the fsync cost is
# a real-disk property the simulated network cannot price.
bench-durability:
	$(GO) run ./cmd/benchjson -durability -out BENCH_PR8.json

# The flow-control record: the slow-replica mixed workload with credit
# windows on and off, plus the fsync-always group-commit comparison.
# Fails if flow control stops lowering the per-peer in-flight byte
# peak, worsens the throttled replica's tail stall, dents exactness in
# either variant, or group commit stops beating one fsync per write.
bench-flow:
	$(GO) run ./cmd/benchjson -flow -out BENCH_PR9.json

# The docs job: broken intra-repo markdown links fail, sources stay
# vetted and formatted.
docs:
	$(GO) test -run 'TestDocs' -v .
	$(GO) vet ./...
	@$(MAKE) fmt-check

# staticcheck with the checked-in staticcheck.conf. CI pins the tool
# version (see .github/workflows/ci.yml); locally this expects
# staticcheck on PATH and is not part of the default `ci` target so a
# machine without it can still reproduce the test jobs.
lint:
	staticcheck ./...

# The multi-process suite: builds the node daemon, launches a
# loopback-TCP cluster of real OS processes, and requires exact
# equivalence with the in-process simnet reference (including the
# kill -9 churn case). Gated behind UNISTORE_INTEGRATION so plain
# `go test ./...` stays hermetic.
integration:
	UNISTORE_INTEGRATION=1 $(GO) test -v -timeout 10m ./integration/

# Same suite with both the harness and the daemon binary built -race.
integration-race:
	UNISTORE_INTEGRATION=1 UNISTORE_RACE=1 \
		$(GO) test -race -v -timeout 10m -count=1 ./integration/

# Observability smoke: boots a traced 3-process cluster with -debug
# endpoints and curls /metrics, /healthz, /trace/recent and pprof the
# way a monitoring stack would — core series must be non-zero and the
# ranked query's trace tree assembled. CI's integration job runs it.
obs-smoke:
	./scripts/obs-smoke.sh

# Bounded fuzzing of the wire payload codec, the TCP frame reader and
# WAL crash recovery: none may panic on arbitrary bytes, and whatever
# log prefix recovery accepts must round-trip a clean close.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodePayload -fuzztime 30s ./internal/pgrid/
	$(GO) test -run '^$$' -fuzz FuzzReadFrame -fuzztime 30s ./internal/netx/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 30s ./internal/store/wal/

ci: fmt-check build vet test race bench docs integration integration-race obs-smoke fuzz-smoke
