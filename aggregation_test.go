// Pushdown-vs-centralized aggregation equivalence suite: every GROUP
// BY / aggregate / DISTINCT / HAVING query shape must return identical
// groups under both execution strategies, at every page size, from
// concurrent goroutines under -race, and with 10% of a replicated
// simnet killed mid-flight — the in-memory algebra executor is the
// oracle throughout.
package unistore_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"unistore"
	"unistore/internal/algebra"
	"unistore/internal/benchscen"
	"unistore/internal/optimizer"
	"unistore/internal/triple"
	"unistore/internal/vql"
	"unistore/internal/workload"
)

// aggEqQueries covers every aggregate shape over the workload schema.
var aggEqQueries = []string{
	`SELECT ?c, count(*) AS ?n WHERE {(?u,'published_in',?c)} GROUP BY ?c`,
	`SELECT ?s, count(*) AS ?n, min(?y) AS ?lo, max(?y) AS ?hi WHERE {(?c,'series',?s) (?c,'year',?y)} GROUP BY ?s`,
	`SELECT ?s, avg(?y) AS ?m WHERE {(?c,'series',?s) (?c,'year',?y)} GROUP BY ?s HAVING ?m >= 2000`,
	`SELECT count(DISTINCT ?c) AS ?d WHERE {(?u,'published_in',?c)}`,
	`SELECT count(*) WHERE {(?p,'age',?a)}`,
	`SELECT DISTINCT ?s WHERE {(?c,'series',?s)}`,
	`SELECT ?a, count(*) AS ?n WHERE {(?p,'age',?a)} GROUP BY ?a ORDER BY ?a LIMIT 4`,
	`SELECT ?c, count(*) AS ?n WHERE {(?u,'published_in',?c)} GROUP BY ?c ORDER BY ?n DESC LIMIT 5`,
}

// aggCanon renders bindings order-independently.
func aggCanon(bs []algebra.Binding) []string {
	var out []string
	for _, b := range bs {
		var vars []string
		for k := range b {
			vars = append(vars, k)
		}
		sort.Strings(vars)
		var sb strings.Builder
		for _, v := range vars {
			sb.WriteString(v + "=" + b[v].Lexical() + ";")
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

// aggOracle executes the query on the in-memory reference executor.
func aggOracle(t testing.TB, src string, data []triple.Triple) []algebra.Binding {
	t.Helper()
	q, err := vql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	lp, err := algebra.Build(q)
	if err != nil {
		t.Fatalf("build %q: %v", src, err)
	}
	return algebra.Execute(lp, &algebra.MemSource{Triples: data})
}

func aggEqCluster(pageSize int, push, concurrent bool) (*unistore.Cluster, []unistore.Triple) {
	opt := optimizer.DefaultOptions()
	if push {
		opt.Agg = optimizer.AggPushdown
	} else {
		opt.Agg = optimizer.AggCentralized
	}
	c := unistore.New(unistore.Config{
		Peers: 32, Seed: 51, PageSize: pageSize, RangeShards: 4,
		ProbeParallelism: 2, Optimizer: opt, Concurrent: concurrent,
	})
	ds := workload.Generate(workload.Options{Seed: 52, Persons: 120})
	c.BulkInsert(ds.Triples...)
	if concurrent {
		c.Net().Quiesce()
	} else {
		c.Net().Settle()
	}
	return c, ds.Triples
}

// checkAggQuery runs one query and compares against the oracle;
// ordered LIMIT queries admit tie reshuffles, so they compare sizes
// and membership in the unlimited reference set.
func checkAggQuery(t testing.TB, c *unistore.Cluster, src string, data []triple.Triple, label string) {
	t.Helper()
	res, err := c.QueryFrom(0, src)
	if err != nil {
		t.Fatalf("%s: %q: %v", label, src, err)
	}
	got := aggCanon(res.Bindings)
	want := aggCanon(aggOracle(t, src, data))
	if strings.Contains(src, "LIMIT") {
		if len(got) != len(want) {
			t.Fatalf("%s: %q sizes differ: %d vs %d\n got %v\nwant %v",
				label, src, len(got), len(want), got, want)
		}
		full := map[string]bool{}
		unlimited := src[:strings.Index(src, " ORDER BY")]
		for _, s := range aggCanon(aggOracle(t, unlimited, data)) {
			full[s] = true
		}
		for _, s := range got {
			if !full[s] {
				t.Fatalf("%s: %q fabricated row %q", label, src, s)
			}
		}
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: %q\n got %v\nwant %v", label, src, got, want)
	}
}

// TestAggregationEquivalencePushdownVsCentralized is the deterministic
// suite: PageSize ∈ {1, 3, ∞} × {pushdown, centralized} × every query
// shape, identical group results throughout.
func TestAggregationEquivalencePushdownVsCentralized(t *testing.T) {
	for _, pageSize := range []int{1, 3, 0} {
		for _, push := range []bool{true, false} {
			c, data := aggEqCluster(pageSize, push, false)
			label := fmt.Sprintf("page=%d push=%v", pageSize, push)
			for _, src := range aggEqQueries {
				checkAggQuery(t, c, src, data, label)
			}
		}
	}
}

// TestAggregationConcurrent issues aggregate queries from many
// goroutines against a concurrent-mode cluster (the -race CI job makes
// the thread-safety claim enforceable).
func TestAggregationConcurrent(t *testing.T) {
	for _, push := range []bool{true, false} {
		c, data := aggEqCluster(benchscen.ScanPageSize, push, true)
		var wg sync.WaitGroup
		errs := make(chan error, 32)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i, src := range aggEqQueries {
					if strings.Contains(src, "LIMIT") {
						continue // tie-dependent; covered deterministically
					}
					res, err := c.QueryFrom((g+i)%c.Size(), src)
					if err != nil {
						errs <- fmt.Errorf("g%d: %q: %v", g, src, err)
						return
					}
					got := aggCanon(res.Bindings)
					want := aggCanon(aggOracle(t, src, data))
					if !reflect.DeepEqual(got, want) {
						errs <- fmt.Errorf("g%d push=%v: %q diverged:\n got %v\nwant %v",
							g, push, src, got, want)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		c.Close()
	}
}

// TestAggregationExactUnderChurn: the GroupByAgg scenario with 10% of
// a replicated simnet killed mid-flight (ChurnTopK-style) must still
// return exactly the oracle's groups under BOTH strategies — partial
// states are idempotent per covered partition, so coverage-based
// retries keep the merge exact.
func TestAggregationExactUnderChurn(t *testing.T) {
	for _, push := range []bool{true, false} {
		c, data := benchscen.GroupByAggChurn(push)
		plan, err := benchscen.GroupByAggPlan(push)
		if err != nil {
			t.Fatal(err)
		}
		if push != plan.Tail.AggPushdown {
			t.Fatalf("strategy pin failed: want push=%v", push)
		}
		cr, err := benchscen.ChurnRun(c, plan)
		if err != nil {
			t.Fatal(err)
		}
		if cr.Dead == 0 {
			t.Fatalf("push=%v: churn killed nobody", push)
		}
		got := aggCanon(cr.Bindings)
		want := aggCanon(aggOracle(t, benchscen.GroupByAggQuery, data))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("push=%v with %d dead peers diverged:\n got %v\nwant %v",
				push, cr.Dead, got, want)
		}
		t.Logf("push=%v: exact groups with %d dead peers, %d msgs", push, cr.Dead, cr.Msgs)
	}
}
