// Churn-failover tests: queries must survive peers dying mid-workload
// (and mid-flight) on a replicated overlay — exact results, no
// pending-operation leaks, bounded retry traffic. The deterministic
// half engineers the worst case (branch envelopes lost with their
// first-hop targets); the concurrent half runs ranked and join queries
// from many goroutines against a 10%-dead simnet under -race.
package unistore_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"unistore"
	"unistore/internal/benchscen"
	"unistore/internal/workload"
)

// TestChurnTopKExactUnderChurn: the replica-balanced churn scenario —
// 10% of the nodes killed while the ranked top-k's branch envelopes
// are in flight — must return exactly the healthy cluster's result,
// leak no pending operations, and stay within a small retry budget.
func TestChurnTopKExactUnderChurn(t *testing.T) {
	// Reference: the identical cluster (same seeds, same data), no
	// churn.
	ref := benchscen.ChurnTopK(false)
	refRes, err := ref.QueryFrom(0, benchscen.TopKQuery)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, b := range refRes.Bindings {
		want = append(want, b["n"].Lexical())
	}
	if len(want) != 5 {
		t.Fatalf("reference top-5 returned %d rows", len(want))
	}

	c := benchscen.ChurnTopK(false)
	cr, err := benchscen.ChurnTopKRun(c)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Dead == 0 {
		t.Fatal("churn run killed nobody; scenario is vacuous")
	}
	var got []string
	for _, b := range cr.Bindings {
		got = append(got, b["n"].Lexical())
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("churned top-5 = %v, want %v", got, want)
	}
	leaks := 0
	for _, p := range c.Peers() {
		leaks += p.PendingOps()
	}
	if leaks != 0 {
		t.Errorf("pending operations leaked under churn: %d", leaks)
	}
	retries := 0
	for _, p := range c.Peers() {
		st := p.Stats()
		retries += st.ProbeRetries + st.ScanRetries
	}
	if retries == 0 {
		t.Error("no failover retries fired; the kill missed the query")
	}
	if retries > 16 {
		t.Errorf("failover used %d retries; want a bounded handful", retries)
	}
}

// churnQueries are the workloads of the concurrent churn test: the
// ranked top-k and an index join (probe-heavy), both exercised by the
// replica read path.
var churnQueries = []string{
	`SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`,
	`SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a < 30}`,
}

// TestChurnQueriesConcurrent kills 10% of a replicated concurrent-mode
// simnet (one replica per partition) and hammers it with ranked and
// join queries from many goroutines: every result must match the
// healthy deterministic reference, and nothing may leak. CI's -race
// job runs this with goroutine-level parallelism.
func TestChurnQueriesConcurrent(t *testing.T) {
	ds := workload.Generate(workload.Options{Seed: 31, Persons: 80})

	ref := unistore.New(unistore.Config{Peers: 32, Replicas: 2, Seed: 33, PageSize: 8, RangeShards: 4})
	ref.Insert(ds.Triples...)
	want := make(map[string][]string)
	for _, q := range churnQueries {
		want[q] = queryRows(t, ref, 0, q)
	}

	c := unistore.New(unistore.Config{
		Peers: 32, Replicas: 2, Seed: 33, PageSize: 8, RangeShards: 4,
		ProbeParallelism: 2, Concurrent: true,
	})
	defer c.Close()
	c.BulkInsert(ds.Triples...)
	// Warm the caches (and learn the replica sets) once per query.
	for _, q := range churnQueries {
		queryRows(t, c, 0, q)
	}

	// Kill 10% of the nodes: one replica per partition, never peer 0.
	byPath := map[string]bool{}
	killed := 0
	for i := 1; i < c.Size() && killed < c.Size()/10; i++ {
		path := c.Peers()[i].Path().String()
		if byPath[path] {
			continue
		}
		byPath[path] = true
		c.Kill(i)
		killed++
	}
	if killed == 0 {
		t.Fatal("killed nobody")
	}
	// Queries must originate at live peers — a corpse cannot serve.
	var live []int
	for i := 0; i < c.Size(); i++ {
		if c.Net().Alive(c.Peers()[i].ID()) {
			live = append(live, i)
		}
	}

	const goroutines = 6
	const rounds = 2
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*rounds*len(churnQueries))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, q := range churnQueries {
					res, err := c.QueryFrom(live[g%len(live)], q)
					if err != nil {
						errs <- fmt.Sprintf("query %q: %v", q, err)
						continue
					}
					var rows []string
					for _, row := range res.Rows() {
						rows = append(rows, fmt.Sprint(row))
					}
					sort.Strings(rows)
					if fmt.Sprint(rows) != fmt.Sprint(want[q]) {
						errs <- fmt.Sprintf("goroutine %d round %d %q:\n got %v\nwant %v", g, r, q, rows, want[q])
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	c.Net().Quiesce()
	leaks := 0
	for _, p := range c.Peers() {
		leaks += p.PendingOps()
	}
	if leaks != 0 {
		t.Errorf("pending operations leaked: %d", leaks)
	}
}
