package main

// The daemon's introspection server (-debug ADDR): live metrics,
// health, recent query traces, and the standard pprof handlers — on a
// separate listener so operator traffic never competes with the
// overlay's TCP transport.
//
//	GET /metrics        Prometheus text: the node's unified registry
//	GET /healthz        JSON liveness (200 / 503): routes + WAL state
//	GET /trace/recent   JSON array of the last-N query trace trees
//	GET /debug/pprof/   CPU/heap/goroutine profiles

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"unistore/internal/core"
	"unistore/internal/trace"
)

// startDebug binds the debug listener and serves it in the background,
// returning the resolved address.
func startDebug(n *core.Node, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = n.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := n.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/trace/recent", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recent := n.TraceLog().Recent()
		if recent == nil {
			recent = []*trace.QueryTrace{}
		}
		_ = json.NewEncoder(w).Encode(recent)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
