// Command unistore is the interactive shell over a simulated UniStore
// cluster — the equivalent of the demo paper's user interface (§4):
// insert triples, formulate VQL queries in one "tab", inspect results,
// the local data, and the locally built routing tables.
//
// Usage:
//
//	unistore [-peers 64] [-replicas 2] [-latency planetlab] [-qgram] [-demo]
//
// With -listen, unistore instead runs as one node daemon of a real
// multi-process cluster over TCP (see daemon.go):
//
//	unistore -listen 127.0.0.1:0 -procs 3 -proc 1 -seeds <addr> \
//	         [-peers 8] [-replicas 2] [-page 64]
//
// Commands at the prompt:
//
//	SELECT ... / INSERT {...}   VQL statement (multi-line until ';')
//	\demo                       load the demo publication dataset
//	\local <peer>               inspect a peer's local data
//	\routes <peer>              inspect a peer's routing table
//	\load                       per-peer storage load
//	\stats                      network statistics
//	\mapping <from> <to>        add a schema mapping
//	\mq SELECT ...              query with automatic mapping rewrites
//	\help                       this help
//	\quit                       exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"unistore/internal/core"
	"unistore/internal/schema"
	"unistore/internal/vql"
	"unistore/internal/workload"
)

func main() {
	peers := flag.Int("peers", 32, "number of overlay partitions")
	replicas := flag.Int("replicas", 1, "replicas per partition")
	latency := flag.String("latency", "constant", "latency model: constant|lan|wan|planetlab")
	qgram := flag.Bool("qgram", true, "maintain the distributed q-gram similarity index")
	seed := flag.Int64("seed", 1, "random seed")
	demo := flag.Bool("demo", false, "preload the demo publication dataset")
	listen := flag.String("listen", "", "daemon mode: TCP listen address (e.g. 127.0.0.1:0)")
	seeds := flag.String("seeds", "", "daemon mode: comma-separated seed addresses")
	procs := flag.Int("procs", 1, "daemon mode: total process count")
	proc := flag.Int("proc", 0, "daemon mode: this process's index (0-based)")
	page := flag.Int("page", 0, "daemon mode: range-scan page size (0 = no paging)")
	data := flag.String("data", "", "daemon mode: durable data directory (WAL + snapshots; empty = memory only)")
	fsync := flag.String("fsync", "always", "daemon mode: WAL fsync policy: always|interval|off")
	debug := flag.String("debug", "", "daemon mode: HTTP debug listen address serving /metrics, /healthz, /trace/recent and /debug/pprof/ (e.g. 127.0.0.1:0)")
	traceOn := flag.Bool("trace", false, "daemon mode: record end-to-end query traces (served at /trace/recent)")
	slowQuery := flag.Duration("slowquery", 0, "daemon mode: log the trace tree of queries slower than this (0 = off; implies -trace to be useful)")
	flag.Parse()

	if *listen != "" {
		runDaemon(daemonOptions{
			listen:     *listen,
			seeds:      *seeds,
			partitions: *peers,
			replicas:   *replicas,
			procs:      *procs,
			proc:       *proc,
			seed:       *seed,
			pageSize:   *page,
			dataDir:    *data,
			fsync:      *fsync,
			debug:      *debug,
			tracing:    *traceOn,
			slowQuery:  *slowQuery,
		})
		return
	}

	c := core.NewCluster(core.Config{
		Peers:       *peers,
		Replicas:    *replicas,
		Latency:     core.LatencyProfile(*latency),
		Seed:        *seed,
		EnableQGram: *qgram,
	})
	fmt.Printf("unistore: %d peers, %d replica(s), %s links\n", *peers, *replicas, *latency)
	if *demo {
		loadDemo(c)
	}
	repl(c)
}

func loadDemo(c *core.Cluster) {
	ds := workload.Generate(workload.Options{Seed: 7, Persons: 100, TypoRate: 0.15})
	c.Insert(ds.Triples...)
	fmt.Printf("loaded demo dataset: %d triples (persons, publications, conferences)\n",
		len(ds.Triples))
}

func repl(c *core.Cluster) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("vql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case pending.Len() == 0 && strings.HasPrefix(trimmed, `\`):
			command(c, trimmed)
		case pending.Len() == 0 && trimmed == "":
		default:
			pending.WriteString(line)
			pending.WriteString("\n")
			if strings.HasSuffix(trimmed, ";") {
				stmt := strings.TrimSuffix(strings.TrimSpace(pending.String()), ";")
				pending.Reset()
				execute(c, stmt)
			}
		}
		prompt()
	}
}

func command(c *core.Cluster, line string) {
	fields := strings.Fields(line)
	arg := func(i int, def int) int {
		if len(fields) > i {
			if v, err := strconv.Atoi(fields[i]); err == nil {
				return v
			}
		}
		return def
	}
	switch fields[0] {
	case `\demo`:
		loadDemo(c)
	case `\local`:
		idx := arg(1, 0)
		ts := c.LocalData(idx)
		fmt.Printf("peer %d stores %d triples:\n", idx, len(ts))
		for i, tr := range ts {
			if i >= 25 {
				fmt.Printf("  ... and %d more\n", len(ts)-25)
				break
			}
			fmt.Printf("  %s\n", tr)
		}
	case `\routes`:
		fmt.Print(c.RoutingTable(arg(1, 0)))
	case `\load`:
		loads := c.StorageLoad()
		for i, l := range loads {
			fmt.Printf("  peer %2d (%s): %d entries\n", i, c.Peers()[i].Path(), l)
		}
	case `\stats`:
		fmt.Println(" ", c.Net().String())
	case `\mapping`:
		if len(fields) != 3 {
			fmt.Println("usage: \\mapping <fromAttr> <toAttr>")
			return
		}
		c.AddMapping(schema.Mapping{From: fields[1], To: fields[2]})
		fmt.Printf("mapping %s = %s published\n", fields[1], fields[2])
	case `\mq`:
		src := strings.TrimSpace(strings.TrimPrefix(line, `\mq`))
		res, err := c.QueryWithMappings(src)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printResult(res)
	case `\help`:
		fmt.Println(helpText)
	case `\quit`, `\q`:
		os.Exit(0)
	default:
		fmt.Printf("unknown command %s (try \\help)\n", fields[0])
	}
}

const helpText = `  SELECT ... ;            run a VQL query (end with ';')
  INSERT {(...)...} ;      insert triples
  \demo                    load the demo publication dataset
  \local <peer>            inspect a peer's local data
  \routes <peer>           inspect a peer's routing table
  \load                    per-peer storage load
  \stats                   network statistics
  \mapping <from> <to>     add a schema mapping
  \mq SELECT ...           query with automatic mapping rewrites
  \quit                    exit`

func execute(c *core.Cluster, src string) {
	stmt, err := vql.Parse(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	switch s := stmt.(type) {
	case *vql.Insert:
		c.Insert(s.Triples...)
		fmt.Printf("inserted %d triples (%d index entries)\n",
			len(s.Triples), 3*len(s.Triples))
	case *vql.Query:
		res, err := c.Query(src)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printResult(res)
	}
}

func printResult(res *core.Result) {
	fmt.Printf("%d result(s) in %v (simulated), %d messages, %d hops\n",
		len(res.Bindings), res.Elapsed, res.Messages, res.Hops)
	if len(res.Bindings) == 0 {
		return
	}
	header := make([]string, len(res.Vars))
	for i, v := range res.Vars {
		header[i] = "?" + v
	}
	fmt.Println("  " + strings.Join(header, " | "))
	for i, row := range res.Rows() {
		if i >= 50 {
			fmt.Printf("  ... and %d more\n", len(res.Bindings)-50)
			break
		}
		fmt.Println("  " + strings.Join(row, " | "))
	}
}
