package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"unistore/internal/core"
	"unistore/internal/store/wal"
	"unistore/internal/triple"
)

// daemonOptions carries the -listen mode flags.
type daemonOptions struct {
	listen     string
	seeds      string
	partitions int
	replicas   int
	procs      int
	proc       int
	seed       int64
	pageSize   int
	dataDir    string
	fsync      string
	debug      string
	tracing    bool
	slowQuery  time.Duration
}

// runDaemon runs one node process of a multi-process cluster. It
// speaks a line protocol on stdin/stdout (the integration harness is
// the client) and logs to stderr:
//
//	-> READY <addr>            printed once bootstrap converged
//	<- PING                    -> PONG
//	<- INSERT <oid> <attr> <value>
//	                           -> OK | ERR <msg>   (acked write)
//	<- QUERY <vql>             -> OK <n>, n tab-separated rows, "."
//	<- BARRIER                 -> OK | ERR timeout  (local quiescence)
//	<- QUIT                    -> graceful shutdown, exit 0
//
// SIGTERM/SIGINT also trigger graceful shutdown: pending operations
// drain, queued frames flush, and every goroutine joins before exit.
func runDaemon(o daemonOptions) {
	logger := log.New(os.Stderr, fmt.Sprintf("unistore[%d]: ", o.proc), log.Lmicroseconds)
	var seeds []string
	for _, s := range strings.Split(o.seeds, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	policy, err := wal.ParseSyncPolicy(o.fsync)
	if err != nil {
		logger.Printf("start: %v", err)
		os.Exit(1)
	}
	n, err := core.NewNode(core.NodeConfig{
		Listen:     o.listen,
		Seeds:      seeds,
		Partitions: o.partitions,
		Replicas:   o.replicas,
		Procs:      o.procs,
		ProcIndex:  o.proc,
		Seed:       o.seed,
		PageSize:   o.pageSize,
		DataDir:    o.dataDir,
		Fsync:      policy,
		Logf:       logger.Printf,
		Tracing:    o.tracing,
		SlowQuery:  o.slowQuery,
	})
	if err != nil {
		logger.Printf("start: %v", err)
		os.Exit(1)
	}
	logger.Printf("listening on %s, hosting %d/%d peers", n.Addr(), len(n.Peers()), n.ClusterSize())
	rejoin := false
	for i, ri := range n.Recovery() {
		logger.Printf("peer %d: recovered snapshot(gen=%d,%d entries) + %d log records, clean=%v torn=%dB",
			i, ri.SnapshotGen, ri.SnapshotEntries, ri.Replayed, ri.Clean, ri.TornBytes)
		if ri.HadState {
			rejoin = true
		}
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigCh
		logger.Printf("%v: draining and shutting down", sig)
		n.Close(10 * time.Second)
		os.Exit(0)
	}()

	// ADDR goes out immediately — the harness needs the resolved :0
	// port to seed the next process. READY follows once this process
	// knows a route to every peer in the cluster, which requires the
	// other processes to be up; the two-line handshake avoids the
	// chicken-and-egg of gating the address on full convergence.
	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(out, "ADDR %s\n", n.Addr())
	if o.debug != "" {
		dbgAddr, err := startDebug(n, o.debug)
		if err != nil {
			logger.Printf("debug listener: %v", err)
			os.Exit(1)
		}
		logger.Printf("debug endpoints on http://%s (/metrics /healthz /trace/recent /debug/pprof/)", dbgAddr)
		fmt.Fprintf(out, "DEBUG %s\n", dbgAddr)
	}
	out.Flush()
	if !n.WaitReady(60 * time.Second) {
		logger.Printf("bootstrap timeout: routes=%v", n.Transport().Routes())
		os.Exit(1)
	}
	if rejoin {
		// This is a restart: re-register with the replica groups and
		// pull the writes missed while down (digest delta — the recovered
		// state makes a full-state stream unnecessary).
		logger.Printf("recovered prior state: rejoining replica groups")
		n.Rejoin()
	}
	fmt.Fprintf(out, "READY %s\n", n.Addr())
	out.Flush()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		serveCommand(n, logger, out, line)
		out.Flush()
	}
	// stdin closed: the harness is gone; shut down gracefully.
	logger.Printf("stdin closed, shutting down")
	n.Close(10 * time.Second)
}

func serveCommand(n *core.Node, logger *log.Logger, out io.Writer, line string) {
	cmd, rest, _ := strings.Cut(line, " ")
	switch strings.ToUpper(cmd) {
	case "PING":
		fmt.Fprintln(out, "PONG")
	case "INSERT":
		oid, rest, ok1 := cut2(rest)
		attr, val, ok2 := cut2(rest)
		if !ok1 || !ok2 {
			fmt.Fprintln(out, "ERR usage: INSERT <oid> <attr> <value>")
			return
		}
		tr := triple.Triple{OID: oid, Attr: attr, Val: parseValue(val)}
		if err := n.Insert(tr, 30*time.Second); err != nil {
			logger.Printf("insert: %v", err)
			fmt.Fprintf(out, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(out, "OK")
	case "QUERY":
		res, err := n.Query(rest)
		if err != nil {
			logger.Printf("query: %v", err)
			fmt.Fprintf(out, "ERR %v\n", strings.ReplaceAll(err.Error(), "\n", " "))
			return
		}
		rows := res.Rows()
		fmt.Fprintf(out, "OK %d\n", len(rows))
		for _, row := range rows {
			fmt.Fprintln(out, strings.Join(row, "\t"))
		}
		fmt.Fprintln(out, ".")
	case "BARRIER":
		if n.Barrier(30 * time.Second) {
			fmt.Fprintln(out, "OK")
		} else {
			fmt.Fprintln(out, "ERR timeout")
		}
	case "QUIT":
		fmt.Fprintln(out, "OK")
		if f, ok := out.(interface{ Flush() error }); ok {
			f.Flush()
		}
		n.Close(10 * time.Second)
		os.Exit(0)
	default:
		fmt.Fprintf(out, "ERR unknown command %q\n", cmd)
	}
}

func cut2(s string) (string, string, bool) {
	a, b, ok := strings.Cut(strings.TrimSpace(s), " ")
	return a, strings.TrimSpace(b), ok
}

// parseValue types a protocol value: numbers become N, the rest S.
func parseValue(s string) triple.Value {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return triple.N(f)
	}
	return triple.S(s)
}
