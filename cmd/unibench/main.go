// Command unibench regenerates the reproduction's experiment tables
// (EXPERIMENTS.md, E1–E12): it builds simulated UniStore clusters,
// runs each experiment's workload, and prints the measured table.
//
// Usage:
//
//	unibench                 # run every experiment at full scale
//	unibench -exp E5         # run one experiment
//	unibench -scale 0.25     # reduced scale (faster)
//	unibench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"unistore/internal/experiments"
	"unistore/internal/trace"
)

var registry = []struct {
	id   string
	desc string
	run  func(experiments.Scale) *trace.Series
}{
	{"E1", "Fig. 2: triple placement (18 entries on 8 peers)",
		func(experiments.Scale) *trace.Series { return experiments.E1TriplePlacement() }},
	{"E2", "logarithmic routing hops vs. network size", experiments.E2RoutingHops},
	{"E3", "query latency under PlanetLab delays (≤400 peers)", experiments.E3QueryLatency},
	{"E4", "identical query under forced plan variants", experiments.E4PlanVariants},
	{"E5", "similarity selection: q-gram index vs. broadcast", experiments.E5Similarity},
	{"E6", "storage load balancing under Zipf skew", experiments.E6LoadBalance},
	{"E7", "skyline and top-N ranking operators", experiments.E7Skyline},
	{"E8", "loosely consistent updates and anti-entropy", experiments.E8Updates},
	{"E9", "range queries: P-Grid vs. Chord baseline", experiments.E9RangeVsChord},
	{"E10", "schema mappings: recall across heterogeneous schemas", experiments.E10Mappings},
	{"E11", "merging two independent overlays", experiments.E11Merge},
	{"E12", "the paper's example query end to end", experiments.E12PaperQuery},
}

func main() {
	exp := flag.String("exp", "", "experiment id (E1..E12); empty runs all")
	scale := flag.Float64("scale", 1.0, "experiment scale factor (peers/data)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.id, e.desc)
		}
		return
	}
	s := experiments.Scale(*scale)
	ran := 0
	for _, e := range registry {
		if *exp != "" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		start := time.Now()
		tab := e.run(s)
		fmt.Println(tab.String())
		fmt.Printf("(%s wall time: %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unibench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
}
