// Command benchjson runs the message-layer benchmark scenarios
// (internal/benchscen — shared with bench_test.go and the
// msgbudget_test.go CI guard, so every consumer measures the same
// workloads) on deterministic 64-peer simnets and writes
// machine-readable results (BENCH_PR5.json by default): total
// messages, simulated milliseconds, time-to-first-result and bytes for
// the ranked top-k, DHT index-join, paged full-scan, churn top-k and
// in-network aggregation benches. The index join runs twice — once
// with the routing cache disabled (the pre-fast-path baseline) and
// once warm — the paged scan verifies no response exceeded the page
// bound, the churn top-k runs twice on a replicated simnet with 10% of
// the nodes killed mid-workload (single-owner fail-slow baseline vs
// the replica-balanced read path), and the GROUP BY aggregation runs
// twice with the strategy pinned: peer-side partial states (pushdown)
// vs rows to the coordinator (centralized). CI runs it in the
// bench-smoke job and uploads the file as an artifact, so the perf
// trajectory is tracked from this PR on.
//
// The tool exits non-zero when a fast path regresses: warm-cache index
// joins must send at least 30% fewer messages than the baseline, no
// paged response may exceed the configured page bound, the churn query
// must still complete with results, replica-balanced reads must beat
// single-owner routing on simulated time under churn, and pushed-down
// aggregation must move fewer messages AND bytes than the centralized
// fallback.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"

	"unistore/internal/benchscen"
	"unistore/internal/core"
	"unistore/internal/pgrid"
	"unistore/internal/trace"
)

type benchResult struct {
	Name   string  `json:"name"`
	Msgs   int     `json:"msgs"`
	SimMS  float64 `json:"sim_ms"`
	TtfrMS float64 `json:"ttfr_ms"`
	Bytes  int     `json:"bytes"`
	// Index-join comparison.
	ImprovementPct float64 `json:"improvement_vs_baseline_pct,omitempty"`
	// Paged-scan bound check. WithinBound must always serialize when
	// set — its false value IS the failure signal tooling looks for.
	PageSize       int   `json:"page_size,omitempty"`
	MaxRespBytes   int   `json:"max_resp_bytes,omitempty"`
	PageBoundBytes int   `json:"page_bound_bytes,omitempty"`
	WithinBound    *bool `json:"within_page_bound,omitempty"`
	// Churn scenario: dead nodes and completion. Completed must always
	// serialize when set — false IS the regression signal.
	DeadPeers int   `json:"dead_peers,omitempty"`
	Rows      int   `json:"rows,omitempty"`
	Completed *bool `json:"completed,omitempty"`
}

type report struct {
	GeneratedBy string        `json:"generated_by"`
	Peers       int           `json:"peers"`
	Benches     []benchResult `json:"benches"`
	// Metrics is the unified registry snapshot of the ranked top-k
	// scenario's cluster (with -metrics): every pgrid/net counter under
	// its stable dotted name, embedded so a bench artifact carries the
	// full observability surface alongside the headline numbers.
	Metrics *trace.Snapshot `json:"metrics,omitempty"`
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// run executes one query on a settled deterministic cluster and
// returns its message/latency/byte metrics.
func run(c *core.Cluster, src string) benchResult {
	before := c.Net().Stats()
	res, err := c.QueryFrom(0, src)
	if err != nil {
		die(err)
	}
	c.Net().Settle()
	after := c.Net().Stats()
	return benchResult{
		Msgs:   after.MessagesSent - before.MessagesSent,
		SimMS:  float64(res.Elapsed.Microseconds()) / 1000,
		TtfrMS: float64(res.TimeToFirst.Microseconds()) / 1000,
		Bytes:  after.BytesSent - before.BytesSent,
	}
}

func topKBench(withMetrics bool) (benchResult, *trace.Snapshot) {
	c := benchscen.TopK()
	r := run(c, benchscen.TopKQuery)
	r.Name = "topk-streaming"
	if !withMetrics {
		return r, nil
	}
	snap := c.Registry().Snapshot()
	return r, &snap
}

func indexJoinBench(disableCache, warm bool) benchResult {
	c := benchscen.IndexJoin(disableCache)
	plan, err := benchscen.IndexJoinPlan()
	if err != nil {
		die(err)
	}
	if warm {
		// First execution teaches the origin peer the partition map of
		// the probed OIDs; the measured run probes direct, batched per
		// responsible peer.
		c.Engine(0).RunPlan(plan)
		c.Net().Settle()
	}
	before := c.Net().Stats()
	_, ex := c.Engine(0).RunPlan(plan)
	c.Net().Settle()
	after := c.Net().Stats()
	return benchResult{
		Msgs:   after.MessagesSent - before.MessagesSent,
		SimMS:  float64(ex.Elapsed().Microseconds()) / 1000,
		TtfrMS: float64(ex.TimeToFirst().Microseconds()) / 1000,
		Bytes:  after.BytesSent - before.BytesSent,
	}
}

func churnBench(singleOwner bool) benchResult {
	cr, err := benchscen.ChurnTopKRun(benchscen.ChurnTopK(singleOwner))
	if err != nil {
		die(err)
	}
	completed := cr.Rows > 0
	return benchResult{
		Msgs:      cr.Msgs,
		SimMS:     cr.SimMS,
		TtfrMS:    cr.TtfrMS,
		Bytes:     cr.Bytes,
		DeadPeers: cr.Dead,
		Rows:      cr.Rows,
		Completed: &completed,
	}
}

func groupByAggBench(pushdown bool) benchResult {
	c, _ := benchscen.GroupByAgg(pushdown)
	r := run(c, benchscen.GroupByAggQuery)
	return r
}

func scanBench() benchResult {
	c, triples := benchscen.Scan()
	c.Net().ResetStats() // max-size tracking starts at the measured query
	r := run(c, benchscen.ScanQuery)
	r.Name = "scan-paged"
	r.PageSize = benchscen.ScanPageSize
	r.MaxRespBytes = c.Net().Stats().MaxSizePerKind[pgrid.KindResponse]
	r.PageBoundBytes = benchscen.PageBound(triples, benchscen.ScanPageSize)
	within := r.MaxRespBytes <= r.PageBoundBytes
	r.WithinBound = &within
	return r
}

// durabilityReport is the BENCH_PR8.json shape: one measured
// restart-rejoin run — WAL recovery exactness and the delta-vs-full
// catch-up comparison — plus the gate verdict.
type durabilityReport struct {
	GeneratedBy string                     `json:"generated_by"`
	Peers       int                        `json:"peers"`
	Result      benchscen.DurabilityResult `json:"durability"`
	GatesOK     bool                       `json:"gates_ok"`
}

// runDurability executes the restart-rejoin scenario and writes
// BENCH_PR8.json, exiting non-zero when recovery loses an acked write,
// either rejoin variant fails to converge, or the delta catch-up stops
// being cheaper than the empty-disk full sync on messages or bytes.
func runDurability(out string) {
	res, err := benchscen.DurabilityRun()
	if err != nil {
		die(err)
	}
	fmt.Printf("  recovery:  %d/%d acked facts, %d log records replayed, %.2fms\n",
		res.Recovered, res.AckedAtKill, res.Replayed, res.RecoveryMS)
	fmt.Printf("  catch-up:  %d msgs / %dB delta vs %d msgs / %dB full sync\n",
		res.DeltaMsgs, res.DeltaBytes, res.FullMsgs, res.FullBytes)

	failed := false
	if res.Recovered != res.AckedAtKill {
		fmt.Fprintf(os.Stderr, "FAIL: WAL recovery rebuilt %d facts, victim acked %d\n",
			res.Recovered, res.AckedAtKill)
		failed = true
	}
	if !res.DeltaExact {
		fmt.Fprintln(os.Stderr, "FAIL: restart-rejoin replica did not converge to its sibling")
		failed = true
	}
	if !res.FullExact {
		fmt.Fprintln(os.Stderr, "FAIL: empty-disk full-sync replica did not converge to its sibling")
		failed = true
	}
	if res.DeltaMsgs >= res.FullMsgs {
		fmt.Fprintf(os.Stderr, "FAIL: delta catch-up (%d msgs) did not beat full sync (%d msgs)\n",
			res.DeltaMsgs, res.FullMsgs)
		failed = true
	}
	if res.DeltaBytes >= res.FullBytes {
		fmt.Fprintf(os.Stderr, "FAIL: delta catch-up (%dB) did not beat full sync (%dB)\n",
			res.DeltaBytes, res.FullBytes)
		failed = true
	}

	rep := durabilityReport{
		GeneratedBy: "cmd/benchjson -durability",
		Peers:       benchscen.DurabilityPeers,
		Result:      res,
		GatesOK:     !failed,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		die(err)
	}
	fmt.Printf("wrote %s\n", out)
	if failed {
		os.Exit(1)
	}
}

// flowReport is the BENCH_PR9.json shape: the slow-replica mixed
// workload measured with flow control on and off, the fsync-always
// group-commit comparison, and the gate verdict.
type flowReport struct {
	GeneratedBy string                      `json:"generated_by"`
	Peers       int                         `json:"peers"`
	FlowOn      benchscen.FlowVariant       `json:"flow_on"`
	FlowOff     benchscen.FlowVariant       `json:"flow_off"`
	GroupCommit benchscen.GroupCommitResult `json:"group_commit"`
	GatesOK     bool                        `json:"gates_ok"`
}

// runFlow executes the slow-replica flow-control scenario with credits
// on and off plus the WAL group-commit bench, and writes
// BENCH_PR9.json. It exits non-zero when flow control stops beating
// the uncontrolled baseline on peak in-flight bytes or tail stall,
// when either variant loses exactness (rows differ between variants,
// or the throttled rejoiner fails to converge), or when group commit
// stops being faster than one fsync per write.
func runFlow(out string) {
	on, err := benchscen.FlowRun(true)
	if err != nil {
		die(err)
	}
	off, err := benchscen.FlowRun(false)
	if err != nil {
		die(err)
	}
	gc, err := benchscen.GroupCommitRun()
	if err != nil {
		die(err)
	}
	fmt.Printf("  flow on:   %7dB peak in-flight, %7.2fms tail stall, %d rows (%d bulk sends, %d stalls)\n",
		on.MaxInflightBytes, on.SlowStallMS, on.RowCount, on.FlowBulkSends, on.FlowStalls)
	fmt.Printf("  flow off:  %7dB peak in-flight, %7.2fms tail stall, %d rows\n",
		off.MaxInflightBytes, off.SlowStallMS, off.RowCount)
	fmt.Printf("  group commit: %.0f wps vs %.0f wps baseline (%.2fx, %d vs %d fsyncs)\n",
		gc.GroupWPS, gc.BaselineWPS, gc.Speedup, gc.GroupSyncs, gc.BaselineSyncs)

	failed := false
	if on.MaxInflightBytes >= off.MaxInflightBytes {
		fmt.Fprintf(os.Stderr, "FAIL: flow control did not lower peak in-flight bytes (%d vs %d uncontrolled)\n",
			on.MaxInflightBytes, off.MaxInflightBytes)
		failed = true
	}
	if on.SlowStallMS > off.SlowStallMS {
		fmt.Fprintf(os.Stderr, "FAIL: flow control worsened the slow replica's tail stall (%.2fms vs %.2fms)\n",
			on.SlowStallMS, off.SlowStallMS)
		failed = true
	}
	if !on.CatchupExact {
		fmt.Fprintln(os.Stderr, "FAIL: throttled rejoiner did not converge with flow control on")
		failed = true
	}
	if !off.CatchupExact {
		fmt.Fprintln(os.Stderr, "FAIL: throttled rejoiner did not converge with flow control off")
		failed = true
	}
	if on.RowCount != off.RowCount || !slices.Equal(on.Rows, off.Rows) {
		fmt.Fprintf(os.Stderr, "FAIL: flow control changed query results (%d rows vs %d uncontrolled)\n",
			on.RowCount, off.RowCount)
		failed = true
	}
	if gc.Speedup <= 1.0 {
		fmt.Fprintf(os.Stderr, "FAIL: group commit (%.0f wps) did not beat per-write fsync (%.0f wps)\n",
			gc.GroupWPS, gc.BaselineWPS)
		failed = true
	}

	rep := flowReport{
		GeneratedBy: "cmd/benchjson -flow",
		Peers:       benchscen.FlowPeers,
		FlowOn:      on,
		FlowOff:     off,
		GroupCommit: gc,
		GatesOK:     !failed,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		die(err)
	}
	fmt.Printf("wrote %s\n", out)
	if failed {
		os.Exit(1)
	}
}

// scaleReport is the BENCH_SCALE.json shape: the routed-lookup cost
// curve over peer counts with its log-linear fit and gate verdict, the
// hot-shard load distributions with replica spreading on and off, the
// latency-topology comparison and the live-churn exactness check.
type scaleReport struct {
	GeneratedBy string                            `json:"generated_by"`
	Sizes       []int                             `json:"sizes"`
	Curve       []benchscen.ScalePoint            `json:"routing_curve"`
	FitA        float64                           `json:"fit_intercept"`
	FitB        float64                           `json:"fit_slope_per_log2_peers"`
	CurveOK     bool                              `json:"curve_ok"`
	HotShard    []benchscen.HotShardResult        `json:"hot_shard"`
	Latency     []benchscen.LatencyScenarioResult `json:"latency"`
	Churn       benchscen.ChurnScaleResult        `json:"churn"`
}

func parseSizes(csv string) []int {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 2 {
			die(fmt.Errorf("bad -sizes entry %q", f))
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		die(fmt.Errorf("-sizes is empty"))
	}
	return out
}

// runScale executes the scale sweep and writes BENCH_SCALE.json,
// exiting non-zero when the routing curve leaves its logarithmic
// envelope, churn costs exactness, or replica spreading stops helping
// the hot shard.
func runScale(out string, sizes []int, cpuprofile string) {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			die(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			die(err)
		}
		defer pprof.StopCPUProfile()
	}
	curve := benchscen.RoutingCurve(sizes)
	a, b := benchscen.LogFit(curve)
	curveOK := benchscen.CurveOK(curve)
	largest := sizes[len(sizes)-1]
	hotPinned := benchscen.HotShard(largest, 1, 1.1)
	hotSpread := benchscen.HotShard(largest, 0, 1.1)
	latencies := []benchscen.LatencyScenarioResult{
		benchscen.LatencyScenario(core.LatencyLAN, sizes[0]),
		benchscen.LatencyScenario(core.LatencyTwoCluster, sizes[0]),
	}
	churn := benchscen.ChurnScale(sizes[0])
	rep := scaleReport{
		GeneratedBy: "cmd/benchjson -scale",
		Sizes:       sizes,
		Curve:       curve,
		FitA:        a,
		FitB:        b,
		CurveOK:     curveOK,
		HotShard:    []benchscen.HotShardResult{hotPinned, hotSpread},
		Latency:     latencies,
		Churn:       churn,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		die(err)
	}
	fmt.Printf("wrote %s\n", out)
	for _, p := range curve {
		fmt.Printf("  %4d peers: %.2f msgs/lookup, %.2f hops\n",
			p.Peers, p.MsgsPerLookup, p.MeanHops)
	}
	fmt.Printf("  fit: msgs = %.2f + %.2f·log2(peers), curve_ok=%v\n", a, b, curveOK)
	fmt.Printf("  hot shard @%d peers: max load %d pinned → %d spread\n",
		largest, hotPinned.MaxLoad, hotSpread.MaxLoad)
	fmt.Printf("  latency: %.2f sim-ms lan → %.2f sim-ms two-cluster\n",
		latencies[0].SimMS, latencies[1].SimMS)
	fmt.Printf("  churn @%d peers: %d/%d rows exact=%v invalidations=%d\n",
		churn.Peers, churn.Rows, churn.Expected, churn.Exact, churn.Invalidations)

	failed := false
	if !curveOK {
		last := curve[len(curve)-1]
		fmt.Fprintf(os.Stderr, "FAIL: %d-peer lookups cost %.2f msgs, above 2x the log extrapolation from %d/%d peers\n",
			last.Peers, last.MsgsPerLookup, sizes[0], sizes[1])
		failed = true
	}
	if !churn.Exact {
		fmt.Fprintf(os.Stderr, "FAIL: scan under live join/leave churn lost exactness (%d/%d rows)\n",
			churn.Rows, churn.Expected)
		failed = true
	}
	if churn.Invalidations == 0 {
		fmt.Fprintf(os.Stderr, "FAIL: live churn invalidated no routing-cache entries\n")
		failed = true
	}
	if hotSpread.MaxLoad >= hotPinned.MaxLoad {
		fmt.Fprintf(os.Stderr, "FAIL: replica spreading did not reduce the hot shard's peak load (%d pinned vs %d spread)\n",
			hotPinned.MaxLoad, hotSpread.MaxLoad)
		failed = true
	}
	if latencies[1].SimMS <= latencies[0].SimMS {
		fmt.Fprintf(os.Stderr, "FAIL: two-cluster WAN topology was not slower than LAN (%.2f vs %.2f sim-ms)\n",
			latencies[1].SimMS, latencies[0].SimMS)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

func main() {
	out := flag.String("out", "", "output path (default BENCH_PR5.json; BENCH_SCALE.json with -scale; BENCH_PR8.json with -durability; BENCH_PR9.json with -flow)")
	scale := flag.Bool("scale", false, "run the scale sweep (routing curve, hot shard, latency topology, live churn) instead of the PR5 benches")
	durability := flag.Bool("durability", false, "run the restart-rejoin durability scenario (WAL recovery + delta-vs-full catch-up) instead of the PR5 benches")
	flowFlag := flag.Bool("flow", false, "run the flow-control scenario (slow-replica credit windows + WAL group commit) instead of the PR5 benches")
	sizes := flag.String("sizes", "128,256,512,1024", "comma-separated peer counts for -scale")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the -scale sweep to this file")
	metrics := flag.Bool("metrics", false, "embed a unified-registry metrics snapshot in the output JSON")
	flag.Parse()

	if *scale {
		if *out == "" {
			*out = "BENCH_SCALE.json"
		}
		runScale(*out, parseSizes(*sizes), *cpuprofile)
		return
	}
	if *durability {
		if *out == "" {
			*out = "BENCH_PR8.json"
		}
		runDurability(*out)
		return
	}
	if *flowFlag {
		if *out == "" {
			*out = "BENCH_PR9.json"
		}
		runFlow(*out)
		return
	}
	if *out == "" {
		*out = "BENCH_PR5.json"
	}

	topk, metricsSnap := topKBench(*metrics)
	base := indexJoinBench(true, false)
	base.Name = "index-join-baseline"
	warmed := indexJoinBench(false, true)
	warmed.Name = "index-join-warm-cache"
	warmed.ImprovementPct = 100 * float64(base.Msgs-warmed.Msgs) / float64(base.Msgs)
	scan := scanBench()
	churnSingle := churnBench(true)
	churnSingle.Name = "churn-topk-single-owner"
	churnReplica := churnBench(false)
	churnReplica.Name = "churn-topk-replica-balanced"
	if churnSingle.SimMS > 0 {
		churnReplica.ImprovementPct = 100 * (churnSingle.SimMS - churnReplica.SimMS) / churnSingle.SimMS
	}
	aggCentral := groupByAggBench(false)
	aggCentral.Name = "groupby-agg-centralized"
	aggPush := groupByAggBench(true)
	aggPush.Name = "groupby-agg-pushdown"
	if aggCentral.Msgs > 0 {
		aggPush.ImprovementPct = 100 * float64(aggCentral.Msgs-aggPush.Msgs) / float64(aggCentral.Msgs)
	}

	rep := report{
		GeneratedBy: "cmd/benchjson",
		Peers:       benchscen.Peers,
		Benches:     []benchResult{topk, base, warmed, scan, churnSingle, churnReplica, aggCentral, aggPush},
		Metrics:     metricsSnap,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		die(err)
	}
	fmt.Printf("wrote %s\n", *out)
	fmt.Printf("  topk:       %d msgs, %.2f sim-ms, %.2f ttfr-ms\n", topk.Msgs, topk.SimMS, topk.TtfrMS)
	fmt.Printf("  index-join: %d msgs baseline → %d warm (%.1f%% fewer)\n",
		base.Msgs, warmed.Msgs, warmed.ImprovementPct)
	fmt.Printf("  scan:       %d msgs, max resp %dB (bound %dB)\n",
		scan.Msgs, scan.MaxRespBytes, scan.PageBoundBytes)
	fmt.Printf("  churn-topk: %.2f sim-ms single-owner → %.2f replica-balanced (%d dead peers, %d msgs)\n",
		churnSingle.SimMS, churnReplica.SimMS, churnReplica.DeadPeers, churnReplica.Msgs)
	fmt.Printf("  groupby-agg: %d msgs / %dB centralized → %d msgs / %dB pushdown (%.1f%% fewer msgs)\n",
		aggCentral.Msgs, aggCentral.Bytes, aggPush.Msgs, aggPush.Bytes, aggPush.ImprovementPct)

	failed := false
	if warmed.ImprovementPct < 30 {
		fmt.Fprintf(os.Stderr, "FAIL: warm index join saved only %.1f%% of messages (need ≥30%%)\n",
			warmed.ImprovementPct)
		failed = true
	}
	if scan.WithinBound == nil || !*scan.WithinBound {
		fmt.Fprintf(os.Stderr, "FAIL: paged response of %dB exceeded bound %dB\n",
			scan.MaxRespBytes, scan.PageBoundBytes)
		failed = true
	}
	if churnReplica.Completed == nil || !*churnReplica.Completed {
		fmt.Fprintf(os.Stderr, "FAIL: replica-balanced churn top-k returned no rows\n")
		failed = true
	}
	if churnReplica.SimMS >= churnSingle.SimMS {
		fmt.Fprintf(os.Stderr, "FAIL: replica-balanced churn reads (%.2f sim-ms) did not beat single-owner routing (%.2f sim-ms)\n",
			churnReplica.SimMS, churnSingle.SimMS)
		failed = true
	}
	if aggPush.Msgs >= aggCentral.Msgs {
		fmt.Fprintf(os.Stderr, "FAIL: pushed-down aggregation (%d msgs) did not beat the centralized fallback (%d msgs)\n",
			aggPush.Msgs, aggCentral.Msgs)
		failed = true
	}
	if aggPush.Bytes >= aggCentral.Bytes {
		fmt.Fprintf(os.Stderr, "FAIL: pushed-down aggregation (%dB) did not beat the centralized fallback (%dB)\n",
			aggPush.Bytes, aggCentral.Bytes)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
