module unistore

go 1.24
