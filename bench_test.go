// Benchmarks regenerating every experiment of EXPERIMENTS.md (E1–E12).
// Each benchmark drives the same harness as cmd/unibench at a reduced
// scale and reports the experiment's headline quantity as a custom
// metric, so `go test -bench=.` provides the whole reproduction in one
// run. Wall-clock ns/op is the simulator's cost, not the system's —
// the simulated metrics are the results.
package unistore_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"unistore"
	"unistore/internal/benchscen"
	"unistore/internal/experiments"
	"unistore/internal/pgrid"
	"unistore/internal/trace"
	"unistore/internal/workload"
)

// benchScale keeps -bench runs fast; cmd/unibench runs scale 1.0.
const benchScale = experiments.Scale(0.25)

// cell parses a numeric table cell.
func cell(tb *trace.Series, row, col int) float64 {
	r := tb.Rows()
	if row < 0 {
		row = len(r) + row
	}
	v, _ := strconv.ParseFloat(strings.TrimSuffix(r[row][col], "s"), 64)
	return v
}

func BenchmarkE1TriplePlacement(b *testing.B) {
	var entries float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E1TriplePlacement()
		for _, row := range tab.Rows() {
			if strings.HasPrefix(row[0], "TOTAL") {
				entries, _ = strconv.ParseFloat(row[1], 64)
			}
		}
	}
	b.ReportMetric(entries, "entries")
}

func BenchmarkE2RoutingHops(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E2RoutingHops(benchScale)
		avg = cell(tab, -1, 1) // largest network's average hops
	}
	b.ReportMetric(avg, "avg-hops-largest-n")
}

func BenchmarkE3QueryLatency(b *testing.B) {
	var ms float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E3QueryLatency(benchScale)
		rows := tab.Rows()
		d, err := time.ParseDuration(rows[len(rows)-1][1])
		if err == nil {
			ms = float64(d.Milliseconds())
		}
	}
	b.ReportMetric(ms, "sim-ms-largest-n")
}

func BenchmarkE4PlanVariants(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E4PlanVariants(benchScale)
		lo, hi := 1e18, 0.0
		for r := range tab.Rows() {
			m := cell(tab, r, 1)
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		spread = hi / lo
	}
	b.ReportMetric(spread, "worst/best-msgs")
}

func BenchmarkE5Similarity(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E5Similarity(benchScale)
		ratio = cell(tab, -1, 2) / cell(tab, -1, 1) // broadcast / qgram
	}
	b.ReportMetric(ratio, "bcast/qgram-msgs")
}

func BenchmarkE6LoadBalance(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E6LoadBalance(benchScale)
		improvement = cell(tab, 0, 1) / cell(tab, 1, 1) // balanced max / adaptive max
	}
	b.ReportMetric(improvement, "maxload-improvement")
}

func BenchmarkE7Skyline(b *testing.B) {
	var size float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E7Skyline(benchScale)
		size = cell(tab, -1, 1)
	}
	b.ReportMetric(size, "skyline-size")
}

func BenchmarkE8Updates(b *testing.B) {
	var repaired float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E8Updates(benchScale)
		repaired = cell(tab, -1, 2) // replicas fresh after anti-entropy, worst loss
	}
	b.ReportMetric(repaired, "replicas-converged")
}

func BenchmarkE9RangeVsChord(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E9RangeVsChord(benchScale)
		ratio = cell(tab, -1, 3) / cell(tab, -1, 2) // chord / pgrid messages
	}
	b.ReportMetric(ratio, "chord/pgrid-msgs")
}

func BenchmarkE10Mappings(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E10Mappings(benchScale)
		gain = cell(tab, 1, 1) / cell(tab, 0, 1) // recall gain
	}
	b.ReportMetric(gain, "recall-gain")
}

func BenchmarkE11Merge(b *testing.B) {
	var msgs float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E11Merge(benchScale)
		msgs = cell(tab, 0, 1)
	}
	b.ReportMetric(msgs, "merge-msgs")
}

func BenchmarkE12PaperQuery(b *testing.B) {
	var msgs float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E12PaperQuery(benchScale)
		msgs = cell(tab, 0, 2)
	}
	b.ReportMetric(msgs, "query-msgs")
}

// --- Public-API micro-benchmarks ---------------------------------------------

func BenchmarkInsertTuple(b *testing.B) {
	c := unistore.New(unistore.Config{Peers: 32, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InsertTuple(unistore.NewTuple(unistore.GenerateOID("b")).
			Set("name", unistore.S("bench person")).
			Set("age", unistore.N(float64(20+i%60))))
	}
}

func BenchmarkExactLookupQuery(b *testing.B) {
	c := unistore.New(unistore.Config{Peers: 64, Seed: 2})
	ds := workload.Generate(workload.Options{Seed: 3, Persons: 200})
	c.Insert(ds.Triples...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(`SELECT ?p WHERE {(?p,'email','p7@example.org')}`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoPatternJoinQuery(b *testing.B) {
	c := unistore.New(unistore.Config{Peers: 64, Seed: 4})
	ds := workload.Generate(workload.Options{Seed: 5, Persons: 200})
	c.Insert(ds.Triples...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(`SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a < 30}`); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Concurrent-execution benchmarks -----------------------------------------
//
// These measure wall clock, not simulated time: the concurrent simnet
// paces deliveries at simulated/TimeDilation, so a query's ns/op
// reflects how its DHT round trips overlap. The Sequential variants
// bound the fan-out window to 1 (probe, wait, probe, ...); the
// Parallel variants fan out the whole probe set at once. Same 64-peer
// overlay, same data, same queries.

// lookupBenchCluster builds a 64-peer concurrent cluster loaded with
// 60 persons; the self-join query's second step grounds its value
// variable with the 60 names bound by the first, resolving them as 60
// exact A#v probes — the multi-key DHT index join.
func lookupBenchCluster(b *testing.B, parallelism int) *unistore.Cluster {
	b.Helper()
	c := unistore.New(unistore.Config{
		Peers: 64, Seed: 8,
		Concurrent:       true,
		TimeDilation:     20, // 1ms simulated link = 50µs wall
		ProbeParallelism: parallelism,
	})
	ds := workload.Generate(workload.Options{Seed: 9, Persons: 60})
	c.BulkInsert(ds.Triples...)
	return c
}

const multiLookupQuery = `SELECT ?p,?q WHERE {(?p,'name',?n) (?q,'name',?n)}`

func benchMultiLookup(b *testing.B, parallelism int) {
	c := lookupBenchCluster(b, parallelism)
	defer c.Close()
	b.ResetTimer()
	results := 0
	for i := 0; i < b.N; i++ {
		res, err := c.QueryFrom(i%c.Size(), multiLookupQuery)
		if err != nil {
			b.Fatal(err)
		}
		results = len(res.Bindings)
	}
	b.ReportMetric(float64(results), "results")
}

func BenchmarkMultiLookupSequential(b *testing.B) { benchMultiLookup(b, 1) }
func BenchmarkMultiLookupParallel(b *testing.B)   { benchMultiLookup(b, 0) }

// Insert throughput: per-triple Insert settles the network after every
// call (round trips serialize), while BulkInsert issues the whole
// batch before one quiescence (round trips overlap).
const insertBatch = 128

func benchInsert(b *testing.B, bulk bool) {
	c := unistore.New(unistore.Config{
		Peers: 64, Seed: 10, Concurrent: true, TimeDilation: 200,
	})
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := make([]unistore.Triple, 0, insertBatch)
		for j := 0; j < insertBatch; j++ {
			oid := unistore.GenerateOID("bench")
			ts = append(ts, unistore.T(oid, "name", "bulk bench"))
		}
		if bulk {
			c.BulkInsert(ts...)
		} else {
			for _, tr := range ts {
				c.Insert(tr)
			}
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*insertBatch)/elapsed.Seconds(), "triples/s")
	}
}

func BenchmarkInsertSequential(b *testing.B) { benchInsert(b, false) }
func BenchmarkInsertBulk(b *testing.B)       { benchInsert(b, true) }

// --- Streaming top-k benchmarks -----------------------------------------------
//
// Before/after comparison for the streaming executor's early
// termination on a 64-peer simnet: the same ranked top-k query with
// the tail materialized (the pre-streaming baseline: every shard
// showers, then sort+truncate) versus streamed (ordered shard release,
// threshold stop). Metrics are simulated: total messages, end-to-end
// simulated milliseconds, and time-to-first-result milliseconds.

const topKQuery = `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`

func benchTopK(b *testing.B, materialize bool) {
	c := unistore.New(unistore.Config{
		Peers: 64, Seed: 12,
		RangeShards:      8,
		ProbeParallelism: 2,
	})
	ds := workload.Generate(workload.Options{Seed: 13, Persons: 300})
	c.BulkInsert(ds.Triples...)
	c.Engine(0).SetMaterializeTail(materialize)
	var msgs, simMS, firstMS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.QueryFrom(0, topKQuery)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Bindings) != 5 {
			b.Fatalf("top-5 returned %d rows", len(res.Bindings))
		}
		c.Net().Settle()
		msgs = float64(res.Messages)
		simMS = float64(res.Elapsed.Microseconds()) / 1000
		firstMS = float64(res.TimeToFirst.Microseconds()) / 1000
	}
	b.ReportMetric(msgs, "msgs")
	b.ReportMetric(simMS, "sim-ms")
	b.ReportMetric(firstMS, "ttfr-ms")
}

func BenchmarkTopKMaterializing(b *testing.B) { benchTopK(b, true) }
func BenchmarkTopKStreaming(b *testing.B)     { benchTopK(b, false) }

// --- Message-layer fast-path benchmarks ----------------------------------------
//
// The DHT index join resolved with per-value OID probes, measured cold
// (routing cache disabled — every probe pays the full routed path, the
// pre-fast-path baseline) and warm (caches learned the partition map
// from a first execution; probes batch per responsible peer). The
// msgs metric is the headline: cmd/benchjson records the same
// scenarios into BENCH_PR5.json for trend tracking.

func benchIndexJoin(b *testing.B, disableCache bool) {
	c := benchscen.IndexJoin(disableCache)
	plan, err := benchscen.IndexJoinPlan()
	if err != nil {
		b.Fatal(err)
	}
	// Warm run (teaches the caches; a no-op when the cache is off).
	c.Engine(0).RunPlan(plan)
	c.Net().Settle()
	var msgs, simMS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := c.Net().Stats().MessagesSent
		bs, ex := c.Engine(0).RunPlan(plan)
		c.Net().Settle()
		if len(bs) == 0 {
			b.Fatal("index join returned nothing")
		}
		msgs = float64(c.Net().Stats().MessagesSent - before)
		simMS = float64(ex.Elapsed().Microseconds()) / 1000
	}
	b.ReportMetric(msgs, "msgs")
	b.ReportMetric(simMS, "sim-ms")
}

func BenchmarkIndexJoinColdRoute(b *testing.B) { benchIndexJoin(b, true) }
func BenchmarkIndexJoinWarmCache(b *testing.B) { benchIndexJoin(b, false) }

// BenchmarkPagedScan measures the paged full scan: bounded responses
// (PageSize entries each) at the cost of continuation pulls.
func BenchmarkPagedScan(b *testing.B) {
	c, _ := benchscen.Scan()
	var msgs, maxResp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Net().ResetStats()
		res, err := c.QueryFrom(0, benchscen.ScanQuery)
		if err != nil {
			b.Fatal(err)
		}
		c.Net().Settle()
		if len(res.Bindings) == 0 {
			b.Fatal("scan returned nothing")
		}
		st := c.Net().Stats()
		msgs = float64(st.MessagesSent)
		maxResp = float64(st.MaxSizePerKind[pgrid.KindResponse])
	}
	b.ReportMetric(msgs, "msgs")
	b.ReportMetric(maxResp, "max-resp-bytes")
}

// benchChurnTopK measures the ranked top-5 with 10% of a replicated
// 64-node simnet killed while the query's branch envelopes are in
// flight: single-owner routing (hedging off) waits out the operation
// deadline; the replica-balanced read path recovers by hedging and
// re-showering through live siblings.
func benchChurnTopK(b *testing.B, singleOwner bool) {
	var msgs, simMS, firstMS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := benchscen.ChurnTopK(singleOwner)
		b.StartTimer()
		cr, err := benchscen.ChurnTopKRun(c)
		if err != nil {
			b.Fatal(err)
		}
		if cr.Rows == 0 {
			b.Fatal("churn top-k returned nothing")
		}
		msgs = float64(cr.Msgs)
		simMS = cr.SimMS
		firstMS = cr.TtfrMS
	}
	b.ReportMetric(msgs, "msgs")
	b.ReportMetric(simMS, "sim-ms")
	b.ReportMetric(firstMS, "ttfr-ms")
}

func BenchmarkChurnTopKSingleOwner(b *testing.B)     { benchChurnTopK(b, true) }
func BenchmarkChurnTopKReplicaBalanced(b *testing.B) { benchChurnTopK(b, false) }

// benchGroupByAgg measures the in-network aggregation scenario: the
// venue/count GROUP BY over ~600 publication rows, with the strategy
// pinned to peer-side partial states (pushdown) or rows-to-the-
// coordinator (centralized). cmd/benchjson records the same pair into
// BENCH_PR5.json and fails CI when pushdown stops winning.
func benchGroupByAgg(b *testing.B, pushdown bool) {
	c, _ := benchscen.GroupByAgg(pushdown)
	var msgs, bytes, simMS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := c.Net().Stats()
		res, err := c.QueryFrom(0, benchscen.GroupByAggQuery)
		if err != nil {
			b.Fatal(err)
		}
		c.Net().Settle()
		if len(res.Bindings) == 0 {
			b.Fatal("group-by returned nothing")
		}
		after := c.Net().Stats()
		msgs = float64(after.MessagesSent - before.MessagesSent)
		bytes = float64(after.BytesSent - before.BytesSent)
		simMS = float64(res.Elapsed.Microseconds()) / 1000
	}
	b.ReportMetric(msgs, "msgs")
	b.ReportMetric(bytes, "bytes")
	b.ReportMetric(simMS, "sim-ms")
}

func BenchmarkGroupByAggPushdown(b *testing.B)    { benchGroupByAgg(b, true) }
func BenchmarkGroupByAggCentralized(b *testing.B) { benchGroupByAgg(b, false) }

// BenchmarkTimeToFirstResult reports how soon the streaming pipeline
// surfaces its first row on an exhaustive (unlimited) scan, against
// the query's full completion time.
func BenchmarkTimeToFirstResult(b *testing.B) {
	c := unistore.New(unistore.Config{
		Peers: 64, Seed: 14,
		RangeShards:      8,
		ProbeParallelism: 1,
	})
	ds := workload.Generate(workload.Options{Seed: 15, Persons: 300})
	c.BulkInsert(ds.Triples...)
	var firstMS, totalMS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.QueryFrom(0, `SELECT ?n WHERE {(?p,'name',?n)}`)
		if err != nil {
			b.Fatal(err)
		}
		firstMS = float64(res.TimeToFirst.Microseconds()) / 1000
		totalMS = float64(res.Elapsed.Microseconds()) / 1000
	}
	b.ReportMetric(firstMS, "ttfr-ms")
	b.ReportMetric(totalMS, "total-ms")
}

func BenchmarkSkylineQuery(b *testing.B) {
	c := unistore.New(unistore.Config{Peers: 64, Seed: 6})
	ds := workload.Generate(workload.Options{Seed: 7, Persons: 200})
	c.Insert(ds.Triples...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(`SELECT ?n,?age,?cnt WHERE {
			(?p,'name',?n) (?p,'age',?age) (?p,'num_of_pubs',?cnt)
		} ORDER BY SKYLINE OF ?age MIN, ?cnt MAX`); err != nil {
			b.Fatal(err)
		}
	}
}
